(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (SplitMix64) used everywhere the
    simulator needs randomness: identifier assignments, random adversaries,
    random graphs.  Unlike [Stdlib.Random], the stream produced for a given
    seed is fixed by this implementation and therefore reproducible across
    OCaml releases, which matters for replaying adversarial executions. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is a sorted list of [k] distinct
    values drawn uniformly from [\[0, n)].
    @raise Invalid_argument if [k < 0] or [k > n]. *)
