let of_sorted s =
  let rec scan next = function
    | [] -> next
    | x :: rest ->
        if x < next then scan next rest
        else if x = next then scan (next + 1) rest
        else next
  in
  scan 0 s

let of_list s = of_sorted (List.sort_uniq compare s)

let excluding s ~avoid = of_list (List.rev_append avoid s)
