lib/util/mex.ml: List
