lib/util/prng.mli:
