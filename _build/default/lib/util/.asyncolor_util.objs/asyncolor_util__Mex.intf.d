lib/util/mex.mli:
