(** Minimum excludant.

    The algorithms of the paper repeatedly compute
    [min (N \ S)] for small finite sets [S] of naturals — the smallest
    colour not used by some neighbourhood. *)

val of_list : int list -> int
(** [of_list s] is the least natural number not occurring in [s].
    Negative elements are ignored (colours are naturals).  Runs in
    O(|s| log |s|). *)

val of_sorted : int list -> int
(** Same as {!of_list} for a list already sorted in increasing order
    (duplicates allowed).  Runs in O(|s|). *)

val excluding : int list -> avoid:int list -> int
(** [excluding s ~avoid] is the least natural not in [s] and not in
    [avoid]. *)
