(* SplitMix64 (Steele, Lea, Flood 2014).  The generator is a 64-bit counter
   advanced by the golden-gamma constant; each output is a finalizing hash of
   the counter.  Splitting hands out the hash of the current counter as the
   seed of the child stream. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

(* Rejection sampling on the top bits keeps the distribution uniform. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let mask = Int64.max_int in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    let v = Int64.rem r bound64 in
    (* Reject the partial final block to avoid modulo bias. *)
    if Int64.sub r v > Int64.sub (Int64.sub mask bound64) Int64.one then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, set-backed. *)
  let module S = Set.Make (Int) in
  let set = ref S.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    set := if S.mem v !set then S.add j !set else S.add v !set
  done;
  S.elements !set
