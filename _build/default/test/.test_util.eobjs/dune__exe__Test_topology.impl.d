test/test_topology.ml: Alcotest Astring Asyncolor_topology Asyncolor_util QCheck QCheck_alcotest
