test/test_shm.ml: Alcotest Array Asyncolor_kernel Asyncolor_shm Asyncolor_topology Asyncolor_util Asyncolor_workload Fun Gen List Option QCheck QCheck_alcotest
