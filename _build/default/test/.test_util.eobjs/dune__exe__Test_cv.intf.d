test/test_cv.mli:
