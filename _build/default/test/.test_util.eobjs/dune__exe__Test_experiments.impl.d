test/test_experiments.ml: Alcotest Asyncolor_experiments List
