test/test_alg2.ml: Alcotest Array Asyncolor Asyncolor_check Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Fun Int List Printf QCheck QCheck_alcotest String
