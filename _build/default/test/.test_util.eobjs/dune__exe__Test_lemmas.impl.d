test/test_lemmas.ml: Alcotest Array Asyncolor Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Fun List Printf QCheck QCheck_alcotest
