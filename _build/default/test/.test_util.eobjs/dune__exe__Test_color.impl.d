test/test_color.ml: Alcotest Array Astring Asyncolor Asyncolor_experiments Asyncolor_topology Asyncolor_workload Filename Format Fun Int List QCheck QCheck_alcotest Sys
