test/test_color.mli:
