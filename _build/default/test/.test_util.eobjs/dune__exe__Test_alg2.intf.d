test/test_alg2.mli:
