test/test_cv.ml: Alcotest Asyncolor_cv Fun Gen List Printf QCheck QCheck_alcotest
