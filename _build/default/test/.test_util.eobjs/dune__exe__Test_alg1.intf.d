test/test_alg1.mli:
