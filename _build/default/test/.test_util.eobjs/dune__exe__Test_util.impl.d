test/test_util.ml: Alcotest Array Asyncolor_util Float Fun List QCheck QCheck_alcotest
