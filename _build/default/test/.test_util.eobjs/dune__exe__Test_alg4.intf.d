test/test_alg4.mli:
