test/test_kernel.ml: Alcotest Array Astring Asyncolor Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Format Gen Int List QCheck QCheck_alcotest String
