test/test_workload.ml: Alcotest Array Astring Asyncolor_util Asyncolor_workload Gen QCheck QCheck_alcotest
