test/test_alg2s.mli:
