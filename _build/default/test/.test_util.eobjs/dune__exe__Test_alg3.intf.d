test/test_alg3.mli:
