(* Tests for Algorithm 4 (O(Δ²)-colouring of general graphs, Appendix A). *)

module A4 = Asyncolor.Algorithm4
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Adversary = Asyncolor_kernel.Adversary
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let validate graph outputs =
  Checker.check
    ~equal:(fun a b -> a = b)
    ~in_palette:(A4.in_palette ~max_degree:(Graph.max_degree graph))
    graph outputs

let run_and_validate ?(seed = 1) graph =
  let n = Graph.n graph in
  let prng = Prng.create ~seed in
  let idents = Idents.random_permutation (Prng.split prng) n in
  let r = A4.run graph ~idents (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
  (r, validate graph r.outputs)

let test_palette_size () =
  check Alcotest.int "Δ=2" 6 (A4.palette_size ~max_degree:2);
  check Alcotest.int "Δ=3" 10 (A4.palette_size ~max_degree:3);
  check Alcotest.int "Δ=8" 45 (A4.palette_size ~max_degree:8)

let test_in_palette () =
  check Alcotest.bool "in" true (A4.in_palette ~max_degree:3 (1, 2));
  check Alcotest.bool "boundary" true (A4.in_palette ~max_degree:3 (0, 3));
  check Alcotest.bool "out" false (A4.in_palette ~max_degree:3 (2, 2));
  check Alcotest.bool "negative" false (A4.in_palette ~max_degree:3 (-1, 0))

let test_zoo () =
  List.iter
    (fun (name, graph) ->
      let r, v = run_and_validate graph in
      if not (r.all_returned && Checker.ok v) then
        Alcotest.failf "%s failed: returned=%b proper=%b" name r.all_returned v.proper)
    [
      ("petersen", Builders.petersen ());
      ("grid 5x5", Builders.grid 5 5);
      ("torus 4x4", Builders.torus 4 4);
      ("K6", Builders.complete 6);
      ("star 10", Builders.star 10);
      ("path 9", Builders.path 9);
      ("hypercube 4", Builders.hypercube 4);
    ]

let test_clique_is_renaming () =
  (* On K_n every pair must differ: the colouring is a renaming with
     (n)(n+1)/2 potential names. *)
  let g = Builders.complete 5 in
  let r, v = run_and_validate ~seed:3 g in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.int "all distinct" 5 v.distinct_colors

let test_star_two_rounds () =
  (* On a star, every leaf is a local extremum vs the centre: decisions are
     almost immediate under the synchronous schedule. *)
  let g = Builders.star 12 in
  let idents = Idents.random_permutation (Prng.create ~seed:5) 12 in
  let r = A4.run g ~idents Adversary.synchronous in
  check Alcotest.bool "fast" true (r.rounds <= 4);
  check Alcotest.bool "proper" true (Checker.ok (validate g r.outputs))

let test_crashes_on_graph () =
  let g = Builders.grid 4 4 in
  let idents = Idents.random_permutation (Prng.create ~seed:7) 16 in
  let adv =
    Adversary.random_crashes (Prng.create ~seed:8) ~n:16 ~rate:0.4 ~horizon:6
      Adversary.synchronous
  in
  let r = A4.run g ~idents adv in
  check Alcotest.bool "safe under crashes" true (Checker.ok (validate g r.outputs))

let prop_gnp_random =
  QCheck.Test.make ~name:"random G(n,p): proper, palette, terminates" ~count:80
    QCheck.(triple (int_range 2 30) (int_range 0 100) (int_range 0 1000))
    (fun (n, pct, seed) ->
      let prng = Prng.create ~seed in
      let graph = Builders.gnp (Prng.split prng) ~n ~p:(float_of_int pct /. 100.0) in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A4.run graph ~idents (Adversary.singletons (Prng.split prng)) in
      let v = validate graph r.outputs in
      r.all_returned && Checker.ok v)

let prop_regular_random =
  QCheck.Test.make ~name:"random d-regular: proper within palette" ~count:40
    QCheck.(pair (int_range 2 5) (int_range 0 1000))
    (fun (d, seed) ->
      let n = 4 * (d + 2) in
      let prng = Prng.create ~seed in
      let graph = Builders.random_regular (Prng.split prng) ~n ~d in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A4.run graph ~idents (Adversary.random_subsets (Prng.split prng) ~p:0.4) in
      let v = validate graph r.outputs in
      r.all_returned && Checker.ok v)

let () =
  Alcotest.run "algorithm4"
    [
      ( "palette",
        [
          Alcotest.test_case "size" `Quick test_palette_size;
          Alcotest.test_case "membership" `Quick test_in_palette;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "zoo" `Quick test_zoo;
          Alcotest.test_case "clique = renaming" `Quick test_clique_is_renaming;
          Alcotest.test_case "star is fast" `Quick test_star_two_rounds;
          Alcotest.test_case "crashes" `Quick test_crashes_on_graph;
          qtest prop_gnp_random;
          qtest prop_regular_random;
        ] );
    ]
