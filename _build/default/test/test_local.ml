(* Tests for the synchronous LOCAL-model baseline: Cole-Vishkin 3-colouring
   of the oriented ring. *)

module Cv = Asyncolor_local.Cole_vishkin_ring
module Logstar = Asyncolor_cv.Logstar
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let test_is_proper_ring () =
  check Alcotest.bool "proper" true (Cv.is_proper_ring [| 0; 1; 2 |]);
  check Alcotest.bool "adjacent equal" false (Cv.is_proper_ring [| 0; 0; 1 |]);
  check Alcotest.bool "wrap equal" false (Cv.is_proper_ring [| 0; 1; 0 |]);
  check Alcotest.bool "single node self-adjacent" false (Cv.is_proper_ring [| 7 |])

let test_cv_step_small () =
  (* identifiers 0..5 on a ring stay proper after one step *)
  let c = Cv.cv_step [| 0; 1; 2; 3; 4; 5 |] in
  check Alcotest.bool "still proper" true (Cv.is_proper_ring c)

let test_cv_step_rejects_improper () =
  Alcotest.check_raises "improper"
    (Invalid_argument "Cole_vishkin_ring.cv_step: not a proper colouring") (fun () ->
      ignore (Cv.cv_step [| 3; 3; 4 |]))

let test_six_color () =
  let colors, rounds = Cv.six_color (Idents.random_permutation (Prng.create ~seed:3) 100) in
  check Alcotest.bool "all <= 5" true (Array.for_all (fun c -> c <= 5) colors);
  check Alcotest.bool "proper" true (Cv.is_proper_ring colors);
  check Alcotest.bool "few rounds" true (rounds <= Cv.rounds_upper_bound 100)

let test_three_color_small () =
  let r = Cv.three_color [| 5; 1; 9 |] in
  check Alcotest.bool "proper" true (Cv.is_proper_ring r.colors);
  check Alcotest.bool "3 colours" true (Array.for_all (fun c -> c <= 2) r.colors);
  check Alcotest.int "rounds accounted" r.rounds (r.cv_iterations + 3)

let test_three_color_rejects () =
  Alcotest.check_raises "n<3"
    (Invalid_argument "Cole_vishkin_ring.three_color: need n >= 3") (fun () ->
      ignore (Cv.three_color [| 1; 2 |]));
  Alcotest.check_raises "improper input"
    (Invalid_argument
       "Cole_vishkin_ring.three_color: identifiers must properly colour the ring")
    (fun () -> ignore (Cv.three_color [| 1; 1; 2 |]))

let test_logstar_growth () =
  (* rounds grow like log* n: going from n=16 to n=2^16 adds only a few *)
  let r16 = Cv.three_color (Idents.increasing 16) in
  let r64k = Cv.three_color (Idents.increasing 65536) in
  check Alcotest.bool "slow growth" true (r64k.rounds - r16.rounds <= 5)

let prop_three_color_correct =
  QCheck.Test.make ~name:"three_color: proper 3-colouring in log*n+O(1) rounds"
    ~count:100
    QCheck.(pair (int_range 3 3000) (int_range 0 10_000))
    (fun (n, seed) ->
      let idents =
        Idents.random_sparse (Prng.create ~seed) ~n ~universe:(max 64 (4 * n))
      in
      let r = Cv.three_color idents in
      Cv.is_proper_ring r.colors
      && Array.for_all (fun c -> c >= 0 && c <= 2) r.colors
      && r.cv_iterations <= Cv.rounds_upper_bound n)

let prop_cv_step_preserves_proper =
  QCheck.Test.make ~name:"cv_step preserves properness" ~count:200
    QCheck.(pair (int_range 3 100) (int_range 0 10_000))
    (fun (n, seed) ->
      let idents = Idents.random_permutation (Prng.create ~seed) n in
      Cv.is_proper_ring (Cv.cv_step idents))

(* --- DECOUPLED ring --------------------------------------------------- *)

module D = Asyncolor_local.Decoupled_ring
module Adversary = Asyncolor_kernel.Adversary

let test_decoupled_rounds_needed () =
  (* K derives from the universe alone; +3 reduction rounds *)
  let k8 = D.cv_iterations_needed ~universe:8 in
  check Alcotest.bool "small universe small K" true (k8 <= 2);
  check Alcotest.int "+3" (k8 + 3) (D.rounds_needed ~universe:8);
  check Alcotest.bool "huge universe still tiny" true
    (D.cv_iterations_needed ~universe:(1 lsl 60) <= 6)

let test_decoupled_c3_three_colors () =
  let d = D.create ~idents:[| 5; 1; 9 |] ~universe:16 in
  let outs, rounds = D.run Adversary.synchronous d in
  check Alcotest.bool "proper" true (D.is_proper_partial outs);
  let colours = List.sort compare (List.filter_map Fun.id (Array.to_list outs)) in
  check Alcotest.(list int) "exactly {0,1,2}" [ 0; 1; 2 ] colours;
  check Alcotest.bool "few rounds" true (rounds <= D.rounds_needed ~universe:16 + 1)

let test_decoupled_waiting_before_radius () =
  let d = D.create ~idents:[| 3; 7; 1; 9 |] ~universe:16 in
  D.advance d;
  check Alcotest.(option int) "too early: no output" None (D.activate d 0);
  for _ = 1 to D.rounds_needed ~universe:16 do
    D.advance d
  done;
  check Alcotest.bool "late activation outputs" true (D.activate d 0 <> None);
  (* idempotent *)
  check Alcotest.(option int) "stable" (D.activate d 0) (D.activate d 0)

let test_decoupled_crash_tolerance () =
  (* crashed processes never compute, but their identifiers propagate:
     survivors 3-colour properly around the holes *)
  let n = 64 in
  let idents = Idents.random_permutation (Prng.create ~seed:9) n in
  let d = D.create ~idents ~universe:n in
  let adv = Adversary.crash ~at:1 ~procs:[ 0; 13; 14; 40 ] Adversary.synchronous in
  let outs, _ = D.run adv d in
  check Alcotest.(option int) "p13 crashed" None outs.(13);
  check Alcotest.bool "survivors coloured" true (outs.(1) <> None && outs.(41) <> None);
  check Alcotest.bool "proper" true (D.is_proper_partial outs)

let test_decoupled_rejects_bad_input () =
  Alcotest.check_raises "n<3" (Invalid_argument "Decoupled_ring.create: need n >= 3")
    (fun () -> ignore (D.create ~idents:[| 1; 2 |] ~universe:8));
  Alcotest.check_raises "dup ids"
    (Invalid_argument "Decoupled_ring.create: identifiers must be distinct") (fun () ->
      ignore (D.create ~idents:[| 1; 1; 2 |] ~universe:8));
  Alcotest.check_raises "outside universe"
    (Invalid_argument "Decoupled_ring.create: identifier outside the universe")
    (fun () -> ignore (D.create ~idents:[| 1; 2; 99 |] ~universe:8))

let prop_decoupled_consistency =
  (* all processes replay the same virtual execution: under ANY schedule
     the outputs form one proper 3-colouring, independent of who computes
     when *)
  QCheck.Test.make ~name:"DECOUPLED: schedule-independent proper 3-colouring"
    ~count:100
    QCheck.(pair (int_range 3 64) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let universe = max 8 (4 * n) in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe in
      (* horizon long enough for the one-process-per-round schedule *)
      let horizon = D.rounds_needed ~universe + (4 * n) + 8 in
      let d1 = D.create ~idents ~universe in
      let outs1, _ =
        D.run ~horizon (Adversary.random_subsets (Prng.split prng) ~p:0.4) d1
      in
      let d2 = D.create ~idents ~universe in
      let outs2, _ = D.run ~horizon Adversary.sequential d2 in
      D.is_proper_partial outs1
      && Array.for_all (function Some c -> c <= 2 | None -> false) outs1
      && outs1 = outs2)

(* --- Linial ------------------------------------------------------------ *)

module L = Asyncolor_local.Linial
module Builders = Asyncolor_topology.Builders
module Graph = Asyncolor_topology.Graph

let test_smallest_prime_above () =
  check Alcotest.int "above 0" 2 (L.smallest_prime_above 0);
  check Alcotest.int "above 2" 3 (L.smallest_prime_above 2);
  check Alcotest.int "above 7" 11 (L.smallest_prime_above 7);
  check Alcotest.int "above 89" 97 (L.smallest_prime_above 89);
  Alcotest.check_raises "negative"
    (Invalid_argument "Linial.smallest_prime_above: negative input") (fun () ->
      ignore (L.smallest_prime_above (-1)))

let test_reduce_step_basic () =
  let g = Builders.cycle 6 in
  let colors = [| 0; 10; 20; 30; 40; 50 |] in
  let fresh, m' = L.reduce_step g ~m:64 colors in
  check Alcotest.bool "proper after step" true (L.is_proper g fresh);
  check Alcotest.bool "palette shrank" true (m' < 64);
  Array.iter (fun c -> check Alcotest.bool "in range" true (c >= 0 && c < m')) fresh

let test_reduce_step_rejects_improper () =
  let g = Builders.cycle 3 in
  Alcotest.check_raises "improper"
    (Invalid_argument "Linial.reduce_step: input not proper") (fun () ->
      ignore (L.reduce_step g ~m:4 [| 1; 1; 2 |]))

let test_color_stall_bound () =
  List.iter
    (fun g ->
      let n = Graph.n g in
      let idents =
        Array.map (fun x -> (x * 104729) + x) (Idents.random_permutation (Prng.create ~seed:n) n)
      in
      let r = L.color g ~idents in
      check Alcotest.bool "proper" true (L.is_proper g r.colors);
      check Alcotest.bool "within palette bound" true
        (r.final_palette <= L.palette_bound ~max_degree:(Graph.max_degree g));
      check Alcotest.bool "few rounds (log*)" true (r.rounds <= 6))
    [ Builders.cycle 128; Builders.petersen (); Builders.grid 7 7; Builders.hypercube 5 ]

let test_color_delta_plus_one () =
  let g = Builders.petersen () in
  let idents = Idents.random_permutation (Prng.create ~seed:4) 10 in
  let r = L.color_delta_plus_one g ~idents in
  check Alcotest.int "Δ+1 colours" 4 r.final_palette;
  check Alcotest.bool "proper" true (L.is_proper g r.colors);
  Array.iter (fun c -> check Alcotest.bool "all < 4" true (c < 4)) r.colors

let prop_linial_random_graphs =
  QCheck.Test.make ~name:"Linial: proper within bound on random graphs" ~count:60
    QCheck.(pair (int_range 4 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let g = Asyncolor_topology.Builders.gnp (Prng.split prng) ~n ~p:0.2 in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = L.color g ~idents in
      let full = L.color_delta_plus_one g ~idents in
      L.is_proper g r.colors
      && r.final_palette <= L.palette_bound ~max_degree:(Graph.max_degree g)
      && L.is_proper g full.colors
      && full.final_palette = Graph.max_degree g + 1)

let () =
  Alcotest.run "local"
    [
      ( "linial",
        [
          Alcotest.test_case "smallest prime" `Quick test_smallest_prime_above;
          Alcotest.test_case "reduce step" `Quick test_reduce_step_basic;
          Alcotest.test_case "rejects improper" `Quick test_reduce_step_rejects_improper;
          Alcotest.test_case "stall bound" `Quick test_color_stall_bound;
          Alcotest.test_case "Δ+1 pipeline" `Quick test_color_delta_plus_one;
          qtest prop_linial_random_graphs;
        ] );
      ( "decoupled",
        [
          Alcotest.test_case "rounds needed" `Quick test_decoupled_rounds_needed;
          Alcotest.test_case "C3 three colours" `Quick test_decoupled_c3_three_colors;
          Alcotest.test_case "waits on network only" `Quick
            test_decoupled_waiting_before_radius;
          Alcotest.test_case "crash tolerance" `Quick test_decoupled_crash_tolerance;
          Alcotest.test_case "input validation" `Quick test_decoupled_rejects_bad_input;
          qtest prop_decoupled_consistency;
        ] );
      ( "cole-vishkin",
        [
          Alcotest.test_case "is_proper_ring" `Quick test_is_proper_ring;
          Alcotest.test_case "cv_step small" `Quick test_cv_step_small;
          Alcotest.test_case "cv_step rejects improper" `Quick
            test_cv_step_rejects_improper;
          Alcotest.test_case "six_color" `Quick test_six_color;
          Alcotest.test_case "three_color small" `Quick test_three_color_small;
          Alcotest.test_case "three_color rejects" `Quick test_three_color_rejects;
          Alcotest.test_case "log* growth" `Quick test_logstar_growth;
          qtest prop_three_color_correct;
          qtest prop_cv_step_preserves_proper;
        ] );
    ]
