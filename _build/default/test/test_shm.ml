(* Tests for the shared-memory substrate: rank-based renaming, the SSB
   task, the MIS foils, and the MIS→SSB reduction of Property 2.1. *)

module Renaming = Asyncolor_shm.Renaming
module Ssb = Asyncolor_shm.Ssb
module Mis = Asyncolor_shm.Mis
module Reduction = Asyncolor_shm.Reduction
module Adversary = Asyncolor_kernel.Adversary
module Status = Asyncolor_kernel.Status
module Builders = Asyncolor_topology.Builders
module Prng = Asyncolor_util.Prng
module Idents = Asyncolor_workload.Idents

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- kth_free ---------------------------------------------------------- *)

let test_kth_free_cases () =
  check Alcotest.int "1st free of []" 0 (Renaming.kth_free 1 []);
  check Alcotest.int "3rd free of []" 2 (Renaming.kth_free 3 []);
  check Alcotest.int "1st free of [0]" 1 (Renaming.kth_free 1 [ 0 ]);
  check Alcotest.int "2nd free of [0;2]" 3 (Renaming.kth_free 2 [ 0; 2 ]);
  check Alcotest.int "dups ignored" 1 (Renaming.kth_free 1 [ 0; 0; 0 ]);
  check Alcotest.int "unsorted input" 4 (Renaming.kth_free 2 [ 3; 0; 1 ]);
  Alcotest.check_raises "k=0" (Invalid_argument "Renaming.kth_free: k must be >= 1")
    (fun () -> ignore (Renaming.kth_free 0 []))

let prop_kth_free_naive =
  QCheck.Test.make ~name:"kth_free agrees with naive enumeration"
    QCheck.(pair (int_range 1 10) (list_of_size (Gen.int_range 0 12) (int_range 0 15)))
    (fun (k, taken) ->
      let naive =
        let rec collect acc candidate =
          if List.length acc = k then List.rev acc
          else if List.mem candidate taken then collect acc (candidate + 1)
          else collect (candidate :: acc) (candidate + 1)
        in
        List.nth (collect [] 0) (k - 1)
      in
      Renaming.kth_free k taken = naive)

(* --- renaming ---------------------------------------------------------- *)

let distinct_names outputs =
  let names = Array.to_list outputs |> List.filter_map Fun.id in
  List.length (List.sort_uniq compare names) = List.length names

let test_renaming_sequential () =
  let r = Renaming.run ~n:3 ~idents:[| 41; 7; 23 |] Adversary.sequential in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.bool "distinct" true (distinct_names r.outputs);
  Array.iter
    (function
      | Some v -> check Alcotest.bool "within 2n-1 names" true (v >= 0 && v <= 4)
      | None -> Alcotest.fail "missing output")
    r.outputs

let test_renaming_synchronous_contention () =
  (* Everyone proposes 0 at once; ranks resolve the pile-up. *)
  let r = Renaming.run ~n:5 ~idents:[| 9; 3; 7; 1; 5 |] Adversary.synchronous in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.bool "distinct" true (distinct_names r.outputs)

let test_renaming_crash_safe () =
  let adv = Adversary.crash ~at:2 ~procs:[ 0 ] Adversary.synchronous in
  let r = Renaming.run ~n:4 ~idents:[| 8; 2; 6; 4 |] adv in
  check Alcotest.bool "survivors named" true
    (Array.for_all Option.is_some [| r.outputs.(1); r.outputs.(2); r.outputs.(3) |]);
  check Alcotest.bool "distinct among returned" true (distinct_names r.outputs)

let prop_renaming_correct =
  QCheck.Test.make ~name:"renaming: distinct names within 2n-1, wait-free"
    ~count:200
    QCheck.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let ids = Idents.random_sparse (Prng.split prng) ~n ~universe:1000 in
      let r =
        Renaming.run ~n ~idents:ids (Adversary.random_subsets (Prng.split prng) ~p:0.5)
      in
      r.all_returned && distinct_names r.outputs
      && Array.for_all
           (function Some v -> v >= 0 && v <= Renaming.name_bound n | None -> false)
           r.outputs)

let test_name_bound () =
  check Alcotest.int "n=3" 4 (Renaming.name_bound 3);
  check Alcotest.int "n=8" 14 (Renaming.name_bound 8)

(* --- SSB --------------------------------------------------------------- *)

let test_ssb_validators () =
  check Alcotest.bool "valid mixed" true (Ssb.valid [| Some 0; Some 1; Some 1 |]);
  check Alcotest.bool "all ones violates (1)" false (Ssb.valid [| Some 1; Some 1 |]);
  check Alcotest.bool "all zeros violates (2)" false (Ssb.valid [| Some 0; Some 0 |]);
  check Alcotest.bool "partial with a one" true (Ssb.valid [| Some 1; None |]);
  check Alcotest.bool "partial all zeros violates (2)" false
    (Ssb.valid [| Some 0; None |]);
  check Alcotest.bool "nobody terminated: vacuous" true (Ssb.valid [| None; None |]);
  check Alcotest.bool "cond1 vacuous when partial" true
    (Ssb.condition_both_sides [| Some 1; None |]);
  check Alcotest.bool "all_terminated" true (Ssb.all_terminated [| Some 0; Some 1 |])

(* --- MIS --------------------------------------------------------------- *)

let g5 = Builders.cycle 5

let test_mis_validators () =
  let ok = [| Some true; Some false; Some true; Some false; Some false |] in
  check Alcotest.bool "valid MIS" true (Mis.valid g5 ok);
  let adjacent_ones = [| Some true; Some true; Some false; Some false; Some false |] in
  check Alcotest.bool "independence violated" false (Mis.independence_ok g5 adjacent_ones);
  let lonely_zero = [| Some false; None; None; None; None |] in
  check Alcotest.bool "domination violated" false (Mis.domination_ok g5 lonely_zero);
  check Alcotest.bool "empty outcome valid" true (Mis.valid g5 (Array.make 5 None))

let test_greedy_wait_free_but_wrong () =
  (* ascending wake-up order produces two adjacent Ins on any cycle *)
  let module E = Mis.Greedy.E in
  let e = E.create g5 ~idents:(Idents.increasing 5) in
  let r = E.run e (Adversary.finite [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]) in
  check Alcotest.bool "everyone decided in one step" true r.all_returned;
  check Alcotest.bool "MIS violated" false (Mis.valid g5 r.outputs)

let test_greedy_ok_synchronous () =
  let module E = Mis.Greedy.E in
  let e = E.create g5 ~idents:[| 4; 1; 3; 0; 2 |] in
  let r = E.run e Adversary.synchronous in
  check Alcotest.bool "returned" true r.all_returned
  (* note: greedy CAN be correct on lucky schedules; no validity assertion *)

let test_cautious_correct_when_fair () =
  List.iter
    (fun seed ->
      let n = 3 + (seed mod 6) in
      let g = Builders.cycle n in
      let module E = Mis.Cautious.E in
      let idents = Idents.random_permutation (Prng.create ~seed) n in
      let e = E.create g ~idents in
      let r = E.run ~max_steps:10_000 e Adversary.synchronous in
      check Alcotest.bool "terminates under fairness" true r.all_returned;
      check Alcotest.bool "valid MIS" true (Mis.valid g r.outputs))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_cautious_blocks_on_crash () =
  (* crash the global max before it wakes: lower neighbours wait forever *)
  let module E = Mis.Cautious.E in
  let e = E.create (Builders.cycle 3) ~idents:[| 0; 1; 2 |] in
  let r =
    E.run ~max_steps:1_000 e (Adversary.crash ~at:1 ~procs:[ 2 ] Adversary.synchronous)
  in
  check Alcotest.bool "blocked" false r.all_returned

(* --- reduction --------------------------------------------------------- *)

module Red = Reduction.Make (Mis.Greedy.P)

let test_reduction_matches_direct_cycle_run () =
  (* The shared-memory simulation must behave exactly like the cycle
     protocol under the corresponding schedule. *)
  let schedules =
    [
      [ [ 0 ]; [ 1 ]; [ 2 ] ];
      [ [ 2 ]; [ 1 ]; [ 0 ] ];
      [ [ 0; 1; 2 ] ];
      [ [ 1 ]; [ 0; 2 ] ];
    ]
  in
  List.iter
    (fun sched ->
      let direct =
        let module E = Mis.Greedy.E in
        let e = E.create (Builders.cycle 3) ~idents:[| 0; 1; 2 |] in
        E.run e (Adversary.finite sched)
      in
      let simulated = Red.run ~n:3 (Adversary.finite sched) in
      let direct_bits = Array.map (Option.map (fun b -> if b then 1 else 0)) direct.outputs in
      check
        Alcotest.(array (option int))
        "simulation = direct execution" direct_bits simulated.outputs)
    schedules

let test_reduction_transports_violation () =
  let r = Red.run ~n:3 (Adversary.finite [ [ 0 ]; [ 1 ]; [ 2 ] ]) in
  let as_bool = Array.map (Option.map (fun b -> b = 1)) r.outputs in
  check Alcotest.bool "MIS violated through the simulation" false
    (Mis.valid (Builders.cycle 3) as_bool)

let test_reduction_rejects_small_n () =
  Alcotest.check_raises "n=2" (Invalid_argument "Reduction.run: need n >= 3")
    (fun () -> ignore (Red.run ~n:2 Adversary.synchronous))

let prop_reduction_equivalence =
  QCheck.Test.make ~name:"reduction = direct cycle run (random schedules)" ~count:100
    QCheck.(pair (int_range 3 6) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      (* one shared random schedule, replayed against both systems *)
      let sched =
        List.init 30 (fun _ ->
            List.filter (fun _ -> Prng.bool prng) (List.init n Fun.id))
        |> List.filter (fun s -> s <> [])
      in
      let direct =
        let module E = Mis.Greedy.E in
        let e = E.create (Builders.cycle n) ~idents:(Array.init n Fun.id) in
        E.run e (Adversary.finite sched)
      in
      let simulated = Red.run ~n (Adversary.finite sched) in
      let direct_bits =
        Array.map (Option.map (fun b -> if b then 1 else 0)) direct.outputs
      in
      direct_bits = simulated.outputs)

let () =
  Alcotest.run "shm"
    [
      ( "kth_free",
        [
          Alcotest.test_case "cases" `Quick test_kth_free_cases;
          qtest prop_kth_free_naive;
        ] );
      ( "renaming",
        [
          Alcotest.test_case "sequential" `Quick test_renaming_sequential;
          Alcotest.test_case "synchronous contention" `Quick
            test_renaming_synchronous_contention;
          Alcotest.test_case "crash safe" `Quick test_renaming_crash_safe;
          Alcotest.test_case "name bound" `Quick test_name_bound;
          qtest prop_renaming_correct;
        ] );
      ("ssb", [ Alcotest.test_case "validators" `Quick test_ssb_validators ]);
      ( "mis",
        [
          Alcotest.test_case "validators" `Quick test_mis_validators;
          Alcotest.test_case "greedy: wait-free but wrong" `Quick
            test_greedy_wait_free_but_wrong;
          Alcotest.test_case "greedy: synchronous run" `Quick test_greedy_ok_synchronous;
          Alcotest.test_case "cautious: correct when fair" `Quick
            test_cautious_correct_when_fair;
          Alcotest.test_case "cautious: blocks on crash" `Quick
            test_cautious_blocks_on_crash;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "matches direct run" `Quick
            test_reduction_matches_direct_cycle_run;
          Alcotest.test_case "transports violation" `Quick
            test_reduction_transports_violation;
          Alcotest.test_case "rejects n<3" `Quick test_reduction_rejects_small_n;
          qtest prop_reduction_equivalence;
        ] );
    ]
