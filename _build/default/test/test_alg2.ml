(* Tests for Algorithm 2 (wait-free 5-colouring in O(n), paper §3.2),
   including the a<=b invariant, Theorem 3.11 sweeps, exhaustive checks
   under interleaved schedules, and a regression test pinning finding F1
   (the phase-lock under simultaneous schedules). *)

module A2 = Asyncolor.Algorithm2
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Explorer = Asyncolor_check.Explorer.Make (A2.P)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let validate n outputs =
  Checker.check ~equal:Int.equal ~in_palette:Color.in_five (Builders.cycle n) outputs

(* --- pinned scenarios ------------------------------------------------ *)

let test_solo_returns_zero () =
  let e = A2.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  A2.E.activate e [ 1 ];
  check Alcotest.(option int) "returned 0" (Some 0) (Status.output (A2.E.status e 1))

let test_a_le_b_invariant () =
  (* C+ ⊆ C implies a = mex C+ <= mex C = b at every step (used in the
     proof of Lemma 3.13). *)
  let n = 9 in
  let e = A2.E.create (Builders.cycle n) ~idents:(Idents.random_permutation (Prng.create ~seed:5) n) in
  A2.E.set_monitor e (fun e ->
      for p = 0 to n - 1 do
        match A2.E.status e p with
        | Status.Working ->
            let s = A2.E.state e p in
            if s.A2.a > s.A2.b then Alcotest.failf "a > b at p%d" p
        | Status.Asleep | Status.Returned _ -> ()
      done);
  ignore (A2.E.run e (Adversary.random_subsets (Prng.create ~seed:6) ~p:0.4))

let test_bound_formulas () =
  check Alcotest.int "3n+8" 38 (A2.activation_bound 10);
  check Alcotest.int "lemma 3.14" 19 (A2.non_minimum_bound ~l:5)

let test_output_never_conflicts_with_frozen_register () =
  (* A returned process's register persists; neighbours must colour around
     it even after crashes freeze other registers. *)
  let idents = [| 2; 7; 4; 9; 1; 6 |] in
  let adv = Adversary.crash ~at:3 ~procs:[ 1; 4 ] Adversary.round_robin in
  let r = A2.run_on_cycle ~idents adv in
  check Alcotest.bool "proper" true (Checker.ok (validate 6 r.outputs))

(* --- finding F1 regression ------------------------------------------ *)

let test_phase_lock_lasso_replay () =
  (* The minimal counterexample of EXPERIMENTS.md F1: idents (5,1,9) on C3,
     schedule {0} {1} {2} then {1,2}^ω.  The state of processes 1 and 2
     must cycle with period 2 and never return. *)
  let e = A2.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  A2.E.activate e [ 0 ];
  A2.E.activate e [ 1 ];
  A2.E.activate e [ 2 ];
  A2.E.activate e [ 1; 2 ];
  let s1 = A2.E.state e 1 and s2 = A2.E.state e 2 in
  for _ = 1 to 10 do
    A2.E.activate e [ 1; 2 ];
    A2.E.activate e [ 1; 2 ]
  done;
  check Alcotest.bool "p1 still working" true (Status.is_working (A2.E.status e 1));
  check Alcotest.bool "p2 still working" true (Status.is_working (A2.E.status e 2));
  check Alcotest.bool "period-2 state cycle" true
    (A2.P.equal_state s1 (A2.E.state e 1) && A2.P.equal_state s2 (A2.E.state e 2))

let test_phase_lock_breaks_under_interleaving () =
  (* The same configuration terminates as soon as the adversary breaks
     simultaneity: alternate {1} and {2}. *)
  let e = A2.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  A2.E.activate e [ 0 ];
  A2.E.activate e [ 1 ];
  A2.E.activate e [ 2 ];
  A2.E.activate e [ 1; 2 ];
  let steps = ref 0 in
  while not (A2.E.all_returned e) && !steps < 20 do
    A2.E.activate e [ 1 ];
    A2.E.activate e [ 2 ];
    steps := !steps + 2
  done;
  check Alcotest.bool "terminates quickly once interleaved" true
    (A2.E.all_returned e);
  check Alcotest.bool "proper" true (Checker.ok (validate 3 (A2.E.outputs e)))

(* --- Theorem 3.11 sweeps --------------------------------------------- *)

let arb_scenario =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 40) (int_range 0 10_000))

let prop_terminates_within_bound =
  QCheck.Test.make ~name:"Theorem 3.11: rounds <= 3n+8 (interleaved schedules)"
    ~count:300 arb_scenario (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A2.run_on_cycle ~idents (Adversary.singletons (Prng.split prng)) in
      r.all_returned && r.rounds <= A2.activation_bound n)

let prop_proper_and_palette =
  QCheck.Test.make ~name:"Theorem 3.11: proper, palette {0..4}" ~count:300
    arb_scenario (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A2.run_on_cycle ~idents (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
      (* random subsets may in principle sustain a lock for a while; only
         validate safety here, liveness is covered by the singleton prop *)
      Checker.ok (validate n r.outputs))

let prop_non_minimum_bound =
  (* Lemma 3.14 under the synchronous schedule on the increasing ring:
     node i's monotone distance to the closest maximum is n-1-i. *)
  QCheck.Test.make ~name:"Lemma 3.14: non-minima within 3l+4" ~count:60
    QCheck.(int_range 4 80)
    (fun n ->
      let r = A2.run_on_cycle ~idents:(Idents.increasing n) Adversary.synchronous in
      r.all_returned
      && Array.for_all Fun.id
           (Array.init (n - 1) (fun i ->
                i = 0
                || r.activations_per_process.(i)
                   <= A2.non_minimum_bound ~l:(n - 1 - i))))

let prop_five_colors_only =
  QCheck.Test.make ~name:"outputs always within {0..4}" ~count:200 arb_scenario
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents =
        Idents.random_sparse (Prng.split prng) ~n ~universe:(max 64 (n * n))
      in
      let r = A2.run_on_cycle ~idents (Adversary.singletons (Prng.split prng)) in
      Array.for_all
        (function Some c -> Color.in_five c | None -> false)
        r.outputs)

(* --- general graphs: the §5 open-problem probe (E16) ------------------ *)

let test_general_palette_helpers () =
  check Alcotest.int "2Δ+1" 7 (A2.general_palette ~max_degree:3);
  check Alcotest.bool "boundary in" true (A2.in_general_palette ~max_degree:3 6);
  check Alcotest.bool "boundary out" false (A2.in_general_palette ~max_degree:3 7)

let test_clique_is_renaming () =
  (* On K_n all outputs must be pairwise distinct and within 2n-1 names. *)
  let n = 6 in
  let g = Builders.complete n in
  let idents = Idents.random_permutation (Prng.create ~seed:21) n in
  let r = A2.run_on_graph g ~idents (Adversary.singletons (Prng.create ~seed:22)) in
  check Alcotest.bool "all returned" true r.all_returned;
  let names = List.filter_map Fun.id (Array.to_list r.outputs) in
  check Alcotest.int "distinct" n (List.length (List.sort_uniq compare names));
  List.iter
    (fun c ->
      check Alcotest.bool "within 2n-1" true
        (A2.in_general_palette ~max_degree:(n - 1) c))
    names

let prop_general_graphs_safe =
  QCheck.Test.make ~name:"general graphs: proper within 2Δ+1, terminates" ~count:120
    QCheck.(triple (int_range 2 24) (int_range 0 100) (int_range 0 10_000))
    (fun (n, pct, seed) ->
      let prng = Prng.create ~seed in
      let g = Asyncolor_topology.Builders.gnp (Prng.split prng) ~n ~p:(float_of_int pct /. 100.) in
      let delta = Asyncolor_topology.Graph.max_degree g in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A2.run_on_graph g ~idents (Adversary.singletons (Prng.split prng)) in
      let v =
        Checker.check ~equal:Int.equal
          ~in_palette:(A2.in_general_palette ~max_degree:delta)
          g r.outputs
      in
      r.all_returned && Checker.ok v)

let test_exhaustive_general_graphs () =
  (* wait-freedom under interleaved schedules on the small zoo — the E16
     evidence, pinned as a regression test *)
  List.iter
    (fun (graph, idents) ->
      let delta = Asyncolor_topology.Graph.max_degree graph in
      let check_outputs outs =
        let v =
          Checker.check ~equal:Int.equal
            ~in_palette:(A2.in_general_palette ~max_degree:delta)
            graph outs
        in
        if Checker.ok v then None else Some "bad"
      in
      let module Exp = Asyncolor_check.Explorer.Make (A2.P) in
      let r = Exp.explore ~mode:`Singletons graph ~idents ~check_outputs in
      check Alcotest.bool "complete" true r.complete;
      check Alcotest.bool "wait-free" true r.wait_free;
      check Alcotest.int "safe" 0 (List.length r.safety);
      check Alcotest.bool "tiny worst case" true (r.worst_case_activations <= 5))
    [
      (Builders.complete 4, [| 3; 7; 1; 9 |]);
      (Builders.star 4, [| 5; 2; 8; 1 |]);
      (Builders.path 4, [| 5; 1; 9; 4 |]);
      ( Asyncolor_topology.Graph.make ~n:4
          ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ],
        [| 5; 1; 9; 4 |] );
    ]

(* --- exhaustive (interleaved) ---------------------------------------- *)

let test_exhaustive_interleaved () =
  List.iter
    (fun idents ->
      let n = Array.length idents in
      let g = Builders.cycle n in
      let check_outputs outs =
        if Checker.ok (validate n outs) then None else Some "bad colouring"
      in
      let r = Explorer.explore ~mode:`Singletons g ~idents ~check_outputs in
      check Alcotest.bool "complete" true r.complete;
      check Alcotest.bool "wait-free interleaved" true r.wait_free;
      check Alcotest.int "no violations" 0 (List.length r.safety);
      check Alcotest.bool "worst within bound" true
        (r.worst_case_activations <= A2.activation_bound n))
    [
      [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 2; 1; 0 |]; [| 5; 1; 9; 4 |];
      [| 0; 1; 2; 3; 4 |]; [| 5; 1; 9; 4; 7; 2 |];
    ]

let test_exhaustive_all_permutations () =
  (* every identifier ORDER around the small cycles: all 6 permutations of
     {5,1,9} on C3 and all 24 permutations of {5,1,9,4} on C4, exhaustively
     over interleaved schedules *)
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
          l
  in
  List.iter
    (fun values ->
      let n = List.length values in
      let g = Builders.cycle n in
      List.iter
        (fun perm ->
          let idents = Array.of_list perm in
          let check_outputs outs =
            if Checker.ok (validate n outs) then None else Some "bad"
          in
          let r = Explorer.explore ~mode:`Singletons g ~idents ~check_outputs in
          if not (r.complete && r.wait_free && r.safety = []) then
            Alcotest.failf "failed for idents %s"
              (String.concat "," (List.map string_of_int perm));
          if r.worst_case_activations > A2.activation_bound n then
            Alcotest.failf "bound exceeded for %s"
              (String.concat "," (List.map string_of_int perm)))
        (perms values))
    [ [ 5; 1; 9 ]; [ 5; 1; 9; 4 ] ]

let test_exhaustive_simultaneous_not_wait_free () =
  (* F1, exhaustively: the full model admits a livelock lasso. *)
  let g = Builders.cycle 3 in
  let r = Explorer.explore g ~idents:[| 5; 1; 9 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "NOT wait-free in full model" false r.wait_free;
  match r.livelock with
  | None -> Alcotest.fail "expected a lasso"
  | Some v ->
      (* the lasso must be replayable: run the prefix once, then keep
         repeating the cycle-closing subset — the processes it activates
         must keep working.  (Re-running the whole prefix would interleave
         singleton steps and break the lock.) *)
      let closing = List.nth v.schedule (List.length v.schedule - 1) in
      let e = A2.E.create g ~idents:[| 5; 1; 9 |] in
      let res =
        A2.E.run e (Adversary.finite (v.schedule @ List.init 20 (fun _ -> closing)))
      in
      check Alcotest.bool "replay does not terminate" false res.all_returned

let () =
  Alcotest.run "algorithm2"
    [
      ( "scenarios",
        [
          Alcotest.test_case "solo returns 0" `Quick test_solo_returns_zero;
          Alcotest.test_case "a <= b invariant" `Quick test_a_le_b_invariant;
          Alcotest.test_case "bound formulas" `Quick test_bound_formulas;
          Alcotest.test_case "crash-frozen registers" `Quick
            test_output_never_conflicts_with_frozen_register;
        ] );
      ( "finding F1",
        [
          Alcotest.test_case "lasso replay locks" `Quick test_phase_lock_lasso_replay;
          Alcotest.test_case "interleaving unlocks" `Quick
            test_phase_lock_breaks_under_interleaving;
          Alcotest.test_case "exhaustive: not wait-free simultaneous" `Slow
            test_exhaustive_simultaneous_not_wait_free;
        ] );
      ( "theorem 3.11",
        [
          qtest prop_terminates_within_bound;
          qtest prop_proper_and_palette;
          qtest prop_non_minimum_bound;
          qtest prop_five_colors_only;
        ] );
      ( "general graphs (E16)",
        [
          Alcotest.test_case "palette helpers" `Quick test_general_palette_helpers;
          Alcotest.test_case "clique = renaming" `Quick test_clique_is_renaming;
          qtest prop_general_graphs_safe;
          Alcotest.test_case "exhaustive small zoo" `Slow test_exhaustive_general_graphs;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "interleaved C3-C5" `Slow test_exhaustive_interleaved;
          Alcotest.test_case "all identifier orders C3/C4" `Slow
            test_exhaustive_all_permutations;
        ] );
    ]
