(* Cross-algorithm property tests pinned to the paper's lemmas.

   Lemma 3.3 (and its Algorithm 2/3 counterparts): a working process given
   two consecutive solo activations — no neighbour takes a step in
   between — returns at the second one.  This is the engine of
   wait-freedom: after the first round the process writes a colour
   candidate avoiding everything it read; if nothing changed, the second
   round confirms it.

   Algorithm 3's synchronisation invariant: the identifier X_p changes only
   in a round where the counter r_p changes too (lines 11-19 couple every
   X update to an r update) — the mechanics behind Lemma 4.5. *)

module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng

let qtest t = QCheck_alcotest.to_alcotest t

let random_prefix prng ~n ~steps =
  List.init steps (fun _ ->
      List.filter (fun _ -> Prng.bool prng) (List.init n Fun.id))

(* Drive a random prefix, then give the first still-working process two solo
   activations; it must have returned by the second.  [true] if no working
   process exists (vacuous). *)
module Solo_progress (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  let check ~n ~seed =
    let prng = Prng.create ~seed in
    let idents = Idents.random_permutation (Prng.split prng) n in
    let e = E.create (Builders.cycle n) ~idents in
    List.iter (E.activate e) (random_prefix (Prng.split prng) ~n ~steps:(Prng.int prng 12));
    match List.find_opt (fun p -> Status.is_working (E.status e p)) (List.init n Fun.id) with
    | None -> true
    | Some p ->
        E.activate e [ p ];
        E.activate e [ p ];
        Status.is_returned (E.status e p)
end

module Solo1 = Solo_progress (Asyncolor.Algorithm1.P)
module Solo2 = Solo_progress (Asyncolor.Algorithm2.P)
module Solo3 = Solo_progress (Asyncolor.Algorithm3.P)

let arb =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 24) (int_range 0 100_000))

let prop_lemma_3_3_alg1 =
  QCheck.Test.make ~name:"Lemma 3.3 (alg1): two solo activations return" ~count:300
    arb (fun (n, seed) -> Solo1.check ~n ~seed)

let prop_lemma_3_3_alg2 =
  QCheck.Test.make ~name:"Lemma 3.3 (alg2): two solo activations return" ~count:300
    arb (fun (n, seed) -> Solo2.check ~n ~seed)

let prop_lemma_3_3_alg3 =
  QCheck.Test.make ~name:"Lemma 3.3 (alg3): two solo activations return" ~count:300
    arb (fun (n, seed) -> Solo3.check ~n ~seed)

(* --- Algorithm 3: X changes only with r ------------------------------- *)

module A3 = Asyncolor.Algorithm3
module Rank = Asyncolor.Rank

let prop_x_changes_with_r =
  QCheck.Test.make ~name:"alg3: X_p changes only when r_p changes" ~count:150 arb
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe:(max 64 (n * n)) in
      let e = A3.E.create (Builders.cycle n) ~idents in
      let prev_x = Array.copy idents in
      let prev_r = Array.make n Rank.zero in
      let ok = ref true in
      A3.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match A3.E.status e p with
            | Status.Working ->
                let s = A3.E.state e p in
                if s.A3.x <> prev_x.(p) && Rank.equal s.A3.r prev_r.(p) then
                  ok := false;
                prev_x.(p) <- s.A3.x;
                prev_r.(p) <- s.A3.r
            | Status.Asleep | Status.Returned _ -> ()
          done);
      let r = A3.E.run e (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
      !ok && r.all_returned)

let prop_b_dominates_a_alg3 =
  (* C+ ⊆ C gives a ≤ b in Algorithm 3 too (used by Lemma 3.13). *)
  QCheck.Test.make ~name:"alg3: a_p <= b_p at every step" ~count:150 arb
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let e = A3.E.create (Builders.cycle n) ~idents in
      let ok = ref true in
      A3.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match A3.E.status e p with
            | Status.Working ->
                let s = A3.E.state e p in
                if s.A3.a > s.A3.b then ok := false
            | Status.Asleep | Status.Returned _ -> ()
          done);
      ignore (A3.E.run e (Adversary.singletons (Prng.split prng)));
      !ok)

(* --- Lemma 4.6 dynamics under adversarial schedules -------------------- *)

let prop_rank_inf_is_absorbing =
  QCheck.Test.make ~name:"alg3: r = ∞ is absorbing and freezes X" ~count:150 arb
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe:(max 64 (n * n)) in
      let e = A3.E.create (Builders.cycle n) ~idents in
      let frozen = Array.make n None in
      let ok = ref true in
      A3.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match A3.E.status e p with
            | Status.Working -> (
                let s = A3.E.state e p in
                match (frozen.(p), s.A3.r) with
                | None, Rank.Inf -> frozen.(p) <- Some s.A3.x
                | Some x, Rank.Inf -> if s.A3.x <> x then ok := false
                | Some _, Rank.Fin _ -> ok := false (* left ∞: impossible *)
                | None, Rank.Fin _ -> ())
            | Status.Asleep | Status.Returned _ -> ()
          done);
      ignore (A3.E.run e (Adversary.random_subsets (Prng.split prng) ~p:0.4));
      !ok)

let () =
  Alcotest.run "lemmas"
    [
      ( "solo progress (Lemma 3.3)",
        [ qtest prop_lemma_3_3_alg1; qtest prop_lemma_3_3_alg2; qtest prop_lemma_3_3_alg3 ] );
      ( "algorithm 3 synchronisation",
        [
          qtest prop_x_changes_with_r;
          qtest prop_b_dominates_a_alg3;
          qtest prop_rank_inf_is_absorbing;
        ] );
    ]
