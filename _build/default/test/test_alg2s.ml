(* Tests for Algorithm 2S — the candidate F1 repair studied by E17:
   safety always; wait-freedom on the instances where E17 verified it,
   and the C4-monotone refutation pinned as a regression. *)

module A2s = Asyncolor.Algorithm2s
module Checker = Asyncolor.Checker
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Explorer = Asyncolor_check.Explorer.Make (A2s.P)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let validate n outputs =
  Checker.check ~equal:Int.equal ~in_palette:A2s.in_palette (Builders.cycle n) outputs

let test_palette_constant () =
  check Alcotest.int "7 colours" 7 A2s.palette_size;
  check Alcotest.bool "6 in" true (A2s.in_palette 6);
  check Alcotest.bool "7 out" false (A2s.in_palette 7)

let test_exhaustive_full_model_c3 () =
  List.iter
    (fun idents ->
      let g = Builders.cycle 3 in
      let r = Explorer.explore g ~idents in
      check Alcotest.bool "complete" true r.complete;
      check Alcotest.bool "wait-free over ALL schedules" true r.wait_free)
    [ [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 2; 0; 1 |] ]

let test_c4_monotone_refutation () =
  (* the E17 refutation: both middles have rank 1, symmetry survives *)
  let r = Explorer.explore (Builders.cycle 4) ~idents:[| 0; 1; 2; 3 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "NOT wait-free (repair refuted)" false r.wait_free;
  match r.livelock with
  | None -> Alcotest.fail "lasso expected"
  | Some v -> check Alcotest.bool "non-trivial lasso" true (List.length v.schedule > 3)

let prop_safety_always =
  (* whatever happens to liveness, outputs are always safe *)
  QCheck.Test.make ~name:"alg2s: proper within {0..6} on every run" ~count:200
    QCheck.(pair (int_range 3 32) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r =
        A2s.run_on_cycle ~max_steps:20_000 ~idents
          (Adversary.random_subsets (Prng.split prng) ~p:0.5)
      in
      Checker.ok (validate n r.outputs))

let prop_interleaved_terminates =
  QCheck.Test.make ~name:"alg2s: terminates under singleton schedules" ~count:150
    QCheck.(pair (int_range 3 24) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let r = A2s.run_on_cycle ~idents (Adversary.singletons (Prng.split prng)) in
      r.all_returned && Checker.ok (validate n r.outputs))

let test_kill_shrinks_attack_surface () =
  (* a random instance where plain Algorithm 2 has lockable pairs and 2S
     has none (pinned from the E17 table, n=32 seed path) *)
  let module H2 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P) in
  let module Hs = Asyncolor_check.Lockhunt.Make (A2s.P) in
  let g = Builders.cycle 32 in
  let idents = Idents.random_permutation (Prng.create ~seed:33) 32 in
  let l2 = List.length (H2.locked (H2.hunt g ~idents)) in
  let ls = List.length (Hs.locked (Hs.hunt g ~idents)) in
  check Alcotest.bool "alg2 lockable" true (l2 > 0);
  check Alcotest.int "alg2s not lockable by the pair attack" 0 ls

let () =
  Alcotest.run "algorithm2s"
    [
      ( "repair study",
        [
          Alcotest.test_case "palette" `Quick test_palette_constant;
          Alcotest.test_case "exhaustive full model C3" `Slow
            test_exhaustive_full_model_c3;
          Alcotest.test_case "C4 monotone refutation" `Slow test_c4_monotone_refutation;
          Alcotest.test_case "pair attack surface" `Quick
            test_kill_shrinks_attack_surface;
          qtest prop_safety_always;
          qtest prop_interleaved_terminates;
        ] );
    ]
