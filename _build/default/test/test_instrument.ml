(* Tests for the instrumented Algorithm 1: the shadow-set machinery of
   §3.1 (Equations 3-4) and the lemmas proved about it, validated on live
   executions. *)

module I = Asyncolor.Instrument
module A1 = Asyncolor.Algorithm1
module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let random_schedule prng ~n ~steps =
  List.init steps (fun _ ->
      List.filter (fun _ -> Prng.bool prng) (List.init n Fun.id))
  |> List.filter (fun s -> s <> [])

(* --- equivalence with the plain algorithm ---------------------------- *)

let prop_agrees_with_algorithm1 =
  QCheck.Test.make ~name:"instrumentation is observationally transparent" ~count:200
    QCheck.(pair (int_range 3 12) (int_range 0 100_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let schedule = random_schedule (Prng.split prng) ~n ~steps:40 in
      I.agrees_with_algorithm1 ~idents ~schedule)

(* --- lemmas monitored on live executions ------------------------------ *)

let run_monitored ~n ~seed =
  let prng = Prng.create ~seed in
  let idents = Idents.random_permutation (Prng.split prng) n in
  let e = I.E.create (Builders.cycle n) ~idents in
  I.E.set_monitor e I.monitor;
  let r = I.E.run e (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
  (idents, e, r)

let prop_lemmas_hold_on_random_runs =
  QCheck.Test.make ~name:"Lemmas 3.5 & 3.7 hold at every step" ~count:150
    QCheck.(pair (int_range 3 24) (int_range 0 100_000))
    (fun (n, seed) ->
      let _, _, r = run_monitored ~n ~seed in
      r.all_returned)

let prop_shadow_sets_grow =
  (* Remark 3.6: A_p and B_p are inclusion-monotone over time. *)
  QCheck.Test.make ~name:"Remark 3.6: shadow sets grow monotonically" ~count:100
    QCheck.(pair (int_range 3 16) (int_range 0 100_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let e = I.E.create (Builders.cycle n) ~idents in
      let prev = Array.make n I.IntSet.empty in
      let prev_b = Array.make n I.IntSet.empty in
      let ok = ref true in
      I.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match I.E.status e p with
            | Status.Working ->
                let s = I.E.state e p in
                if not (I.IntSet.subset prev.(p) s.I.shadow.I.a_set) then ok := false;
                if not (I.IntSet.subset prev_b.(p) s.I.shadow.I.b_set) then ok := false;
                prev.(p) <- s.I.shadow.I.a_set;
                prev_b.(p) <- s.I.shadow.I.b_set
            | Status.Asleep | Status.Returned _ -> ()
          done);
      let r = I.E.run e (Adversary.singletons (Prng.split prng)) in
      !ok && r.all_returned)

let prop_lemma_3_8 =
  (* A non-extremal process that misses must grow A or B (together with
     Remark 3.6 this bounds its number of misses by l + l' + 1). *)
  QCheck.Test.make ~name:"Lemma 3.8: misses of non-extremal processes grow A∪B"
    ~count:100
    QCheck.(pair (int_range 4 16) (int_range 0 100_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let lo = Array.fold_left min max_int idents
      and hi = Array.fold_left max 0 idents in
      let extremal p = idents.(p) = lo || idents.(p) = hi in
      let e = I.E.create (Builders.cycle n) ~idents in
      let prev_sizes = Array.make n (-1) in
      let prev_rounds = Array.make n 0 in
      let ok = ref true in
      I.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match I.E.status e p with
            | Status.Working when not (extremal p) ->
                let s = I.E.state e p in
                let size =
                  I.IntSet.cardinal s.I.shadow.I.a_set
                  + I.IntSet.cardinal s.I.shadow.I.b_set
                in
                let rounds = I.E.activations e p in
                (* the process missed (it is still working after a round);
                   Lemma 3.8 says the union grew *)
                if rounds > prev_rounds.(p) && prev_sizes.(p) >= 0 && size <= prev_sizes.(p)
                then ok := false;
                if rounds > prev_rounds.(p) then begin
                  prev_sizes.(p) <- size;
                  prev_rounds.(p) <- rounds
                end
            | _ -> ()
          done);
      let r = I.E.run e (Adversary.synchronous) in
      r.all_returned && !ok)

let test_shadow_example_by_hand () =
  (* C4 with idents 1 < 3 < 7 and 5: wake everyone synchronously twice and
     inspect A/B of the node with identifier 3 (neighbours 1 and 7). *)
  let idents = [| 1; 3; 7; 5 |] in
  let e = I.E.create (Builders.cycle 4) ~idents in
  I.E.activate e [ 0; 1; 2; 3 ];
  I.E.activate e [ 0; 1; 2; 3 ];
  (match I.E.status e 1 with
  | Status.Working ->
      let s = I.E.state e 1 in
      check Alcotest.(list int) "A_1 = {7} after 2nd round" [ 7 ]
        (I.IntSet.elements s.I.shadow.I.a_set);
      check Alcotest.(list int) "B_1 = {1}" [ 1 ] (I.IntSet.elements s.I.shadow.I.b_set)
  | _ -> ())
  (* whichever way the race resolves, the lemmas must hold *)
  ;
  I.monitor e

(* --- Algorithm 2 instrumentation: Eq. (5) of Lemma 3.13 ---------------- *)

module I2 = Asyncolor.Instrument2

let prop_agrees_with_algorithm2 =
  QCheck.Test.make ~name:"alg2 instrumentation is observationally transparent"
    ~count:200
    QCheck.(pair (int_range 3 12) (int_range 0 100_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let schedule = random_schedule (Prng.split prng) ~n ~steps:40 in
      I2.agrees_with_algorithm2 ~idents ~schedule)

let prop_eq5_random_runs =
  QCheck.Test.make ~name:"Eq. (5) holds at every step (random schedules)" ~count:150
    QCheck.(pair (int_range 3 24) (int_range 0 100_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_permutation (Prng.split prng) n in
      let e = I2.E.create (Builders.cycle n) ~idents in
      I2.E.set_monitor e I2.monitor;
      let r = I2.E.run e (Adversary.singletons (Prng.split prng)) in
      r.all_returned)

let test_eq5_holds_inside_the_phase_lock () =
  (* The precision claim of F1: Eq. (5) is sound even in the execution
     where Theorem 3.11 fails — the error is in the later strict-inequality
     step, not in the parity machinery. *)
  let e = I2.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  I2.E.set_monitor e I2.monitor;
  I2.E.activate e [ 0 ];
  I2.E.activate e [ 1 ];
  I2.E.activate e [ 2 ];
  for _ = 1 to 40 do
    I2.E.activate e [ 1; 2 ]
  done;
  Alcotest.(check bool)
    "still locked (and Eq. (5) never fired)" false
    (I2.E.all_returned e)

let () =
  Alcotest.run "instrument"
    [
      ( "algorithm 2 / Eq. (5)",
        [
          qtest prop_agrees_with_algorithm2;
          qtest prop_eq5_random_runs;
          Alcotest.test_case "Eq. (5) inside the F1 lock" `Quick
            test_eq5_holds_inside_the_phase_lock;
        ] );
      ( "shadow sets",
        [
          qtest prop_agrees_with_algorithm1;
          qtest prop_lemmas_hold_on_random_runs;
          qtest prop_shadow_sets_grow;
          qtest prop_lemma_3_8;
          Alcotest.test_case "worked example" `Quick test_shadow_example_by_hand;
        ] );
    ]
