(* Integration test: every reproduction experiment must pass in quick mode,
   and the registry must be well-formed. *)

module Registry = Asyncolor_experiments.Registry
module Outcome = Asyncolor_experiments.Outcome

let check = Alcotest.check

let test_registry_well_formed () =
  check Alcotest.int "18 experiments" 18 (List.length Registry.all);
  let ids = List.map (fun (e : Registry.entry) -> e.id) Registry.all in
  check Alcotest.(list string) "ids in order"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12";
      "E13"; "E14"; "E15"; "E16"; "E17"; "E18" ]
    ids;
  check Alcotest.bool "find case-insensitive" true (Registry.find "e7" <> None);
  check Alcotest.bool "find missing" true (Registry.find "E99" = None)

let run_one id () =
  match Registry.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e ->
      let outcome = e.run ~quick:true () in
      check Alcotest.string "id matches" id outcome.Outcome.id;
      if not outcome.Outcome.ok then
        Alcotest.failf "%s did not reproduce: %s" id outcome.Outcome.title;
      check Alcotest.bool "has tables" true (outcome.Outcome.tables <> [])

let () =
  Alcotest.run "experiments"
    ([
       Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
     ]
     @ List.map
         (fun (e : Registry.entry) ->
           Alcotest.test_case (e.id ^ " reproduces (quick)") `Slow (run_one e.id))
         Registry.all
    |> fun cases -> [ ("experiments", cases) ])
