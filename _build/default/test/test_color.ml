(* Direct unit tests for the colour palettes and the output checker. *)

module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Builders = Asyncolor_topology.Builders

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Color ------------------------------------------------------------- *)

let test_pair_palette_membership () =
  check Alcotest.bool "(0,0)" true (Color.pair_in_palette ~budget:2 (0, 0));
  check Alcotest.bool "(2,0)" true (Color.pair_in_palette ~budget:2 (2, 0));
  check Alcotest.bool "(1,2) out" false (Color.pair_in_palette ~budget:2 (1, 2));
  check Alcotest.bool "negative a" false (Color.pair_in_palette ~budget:2 (-1, 0));
  check Alcotest.bool "negative b" false (Color.pair_in_palette ~budget:2 (0, -1));
  check Alcotest.bool "larger budget" true (Color.pair_in_palette ~budget:5 (2, 3))

let test_pair_palette_size () =
  check Alcotest.int "budget 2 -> 6" 6 (Color.pair_palette_size ~budget:2);
  check Alcotest.int "budget 3 -> 10" 10 (Color.pair_palette_size ~budget:3);
  check Alcotest.int "budget 0 -> 1" 1 (Color.pair_palette_size ~budget:0)

let test_pair_index_enumerates_palette () =
  (* the diagonal encoding is a bijection palette -> [0, size) *)
  let budget = 4 in
  let size = Color.pair_palette_size ~budget in
  let seen = Array.make size false in
  for a = 0 to budget do
    for b = 0 to budget - a do
      let i = Color.pair_index (a, b) in
      if i < 0 || i >= size then Alcotest.failf "index %d out of range" i;
      if seen.(i) then Alcotest.failf "index %d duplicated" i;
      seen.(i) <- true
    done
  done;
  check Alcotest.bool "surjective" true (Array.for_all Fun.id seen)

let prop_pair_index_injective =
  QCheck.Test.make ~name:"pair_index injective on the palette"
    QCheck.(pair (pair (int_range 0 20) (int_range 0 20)) (pair (int_range 0 20) (int_range 0 20)))
    (fun (p1, p2) ->
      p1 = p2 || Color.pair_index p1 <> Color.pair_index p2)

let test_in_five () =
  check Alcotest.bool "0" true (Color.in_five 0);
  check Alcotest.bool "4" true (Color.in_five 4);
  check Alcotest.bool "5" false (Color.in_five 5);
  check Alcotest.bool "-1" false (Color.in_five (-1))

(* --- Checker ------------------------------------------------------------ *)

let g5 = Builders.cycle 5

let test_checker_proper () =
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 0; Some 1; Some 0; Some 1; Some 2 |]
  in
  check Alcotest.bool "proper" true v.proper;
  check Alcotest.int "returned" 5 v.returned;
  check Alcotest.int "distinct" 3 v.distinct_colors;
  check Alcotest.bool "ok" true (Checker.ok v)

let test_checker_conflicts () =
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 0; Some 0; Some 1; Some 0; Some 1 |]
  in
  check Alcotest.bool "not proper" false v.proper;
  check Alcotest.(list (pair int int)) "conflict edge listed" [ (0, 1) ] v.conflicts;
  check Alcotest.bool "not ok" false (Checker.ok v)

let test_checker_wraparound_conflict () =
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 2; Some 0; Some 1; Some 0; Some 2 |]
  in
  check Alcotest.(list (pair int int)) "wrap edge 0-4" [ (0, 4) ] v.conflicts

let test_checker_partial_outputs () =
  (* crashed endpoints unconstrain their edges *)
  (* nodes 0 and 2 share a colour but are insulated by the crashed node 1;
     the wrap edge 4-0 carries distinct colours *)
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 0; None; Some 0; None; Some 1 |]
  in
  check Alcotest.bool "proper (no two returned adjacent)" true v.proper;
  check Alcotest.int "returned" 3 v.returned;
  check Alcotest.int "distinct" 2 v.distinct_colors

let test_checker_off_palette () =
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 7; Some 0; Some 1; Some 0; Some 1 |]
  in
  check Alcotest.(list int) "process 0 flagged" [ 0 ] v.off_palette;
  check Alcotest.bool "proper but not ok" true (v.proper && not (Checker.ok v))

let test_checker_length_mismatch () =
  Alcotest.check_raises "length"
    (Invalid_argument "Checker.check: outputs length must match node count")
    (fun () ->
      ignore (Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5 [| Some 0 |]))

let test_checker_pp_renders () =
  let v =
    Checker.check ~equal:Int.equal ~in_palette:Color.in_five g5
      [| Some 0; Some 0; Some 9; None; Some 1 |]
  in
  let s = Format.asprintf "%a" Checker.pp v in
  check Alcotest.bool "mentions properness" true
    (Astring.String.is_infix ~affix:"proper=false" s);
  check Alcotest.bool "mentions the conflict" true
    (Astring.String.is_infix ~affix:"0-1" s)

(* --- Outcome CSVs -------------------------------------------------------- *)

let test_outcome_write_csvs () =
  let table = Asyncolor_workload.Table.create ~headers:[ "x"; "y" ] in
  Asyncolor_workload.Table.add_row table [ "1"; "2" ];
  let outcome =
    {
      Asyncolor_experiments.Outcome.id = "E0";
      title = "t";
      claim = "c";
      tables = [ ("My Caption!", table) ];
      ok = true;
      notes = [];
    }
  in
  let dir = Filename.temp_file "asyncolor" "csvdir" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let paths = Asyncolor_experiments.Outcome.write_csvs ~dir outcome in
  check Alcotest.int "one file" 1 (List.length paths);
  let path = List.hd paths in
  check Alcotest.bool "slugged name" true
    (Filename.basename path = "e0_my_caption_.csv");
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  check Alcotest.string "header row" "x,y" line

let () =
  Alcotest.run "color"
    [
      ( "palette",
        [
          Alcotest.test_case "pair membership" `Quick test_pair_palette_membership;
          Alcotest.test_case "pair size" `Quick test_pair_palette_size;
          Alcotest.test_case "pair index bijective" `Quick
            test_pair_index_enumerates_palette;
          Alcotest.test_case "in_five" `Quick test_in_five;
          qtest prop_pair_index_injective;
        ] );
      ( "checker",
        [
          Alcotest.test_case "proper" `Quick test_checker_proper;
          Alcotest.test_case "conflicts" `Quick test_checker_conflicts;
          Alcotest.test_case "wraparound" `Quick test_checker_wraparound_conflict;
          Alcotest.test_case "partial outputs" `Quick test_checker_partial_outputs;
          Alcotest.test_case "off palette" `Quick test_checker_off_palette;
          Alcotest.test_case "length mismatch" `Quick test_checker_length_mismatch;
          Alcotest.test_case "pp" `Quick test_checker_pp_renders;
        ] );
      ( "outcome",
        [ Alcotest.test_case "write csvs" `Quick test_outcome_write_csvs ] );
    ]
