(* Tests for Asyncolor_cv: binary decompositions, the iterated logarithm,
   and the identifier-reduction function f of Equation (6), including
   property-based tests of Lemmas 4.1, 4.2 and 4.3. *)

module Bits = Asyncolor_cv.Bits
module Logstar = Asyncolor_cv.Logstar
module Reduce = Asyncolor_cv.Reduce

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- bits ----------------------------------------------------------- *)

let test_length () =
  check Alcotest.int "|0|" 0 (Bits.length 0);
  check Alcotest.int "|1|" 1 (Bits.length 1);
  check Alcotest.int "|2|" 2 (Bits.length 2);
  check Alcotest.int "|3|" 2 (Bits.length 3);
  check Alcotest.int "|4|" 3 (Bits.length 4);
  check Alcotest.int "|255|" 8 (Bits.length 255);
  check Alcotest.int "|256|" 9 (Bits.length 256)

let test_bit () =
  check Alcotest.int "5_0" 1 (Bits.bit 5 0);
  check Alcotest.int "5_1" 0 (Bits.bit 5 1);
  check Alcotest.int "5_2" 1 (Bits.bit 5 2);
  check Alcotest.int "5_3" 0 (Bits.bit 5 3);
  check Alcotest.int "beyond width" 0 (Bits.bit 5 100)

let test_first_differing_bit () =
  check Alcotest.(option int) "equal" None (Bits.first_differing_bit 12 12);
  check Alcotest.(option int) "5 vs 4" (Some 0) (Bits.first_differing_bit 5 4);
  check Alcotest.(option int) "5 vs 7" (Some 1) (Bits.first_differing_bit 5 7);
  check Alcotest.(option int) "8 vs 0" (Some 3) (Bits.first_differing_bit 8 0)

let test_to_string () =
  check Alcotest.string "0" "0" (Bits.to_string 0);
  check Alcotest.string "1" "1" (Bits.to_string 1);
  check Alcotest.string "6" "110" (Bits.to_string 6);
  check Alcotest.string "10" "1010" (Bits.to_string 10)

let test_negative_rejected () =
  Alcotest.check_raises "length" (Invalid_argument "Bits.length: negative input")
    (fun () -> ignore (Bits.length (-1)))

let prop_length_tight =
  QCheck.Test.make ~name:"2^(|z|-1) <= z < 2^|z| for z > 0"
    QCheck.(int_range 1 (1 lsl 40))
    (fun z ->
      let l = Bits.length z in
      (1 lsl (l - 1)) <= z && z < 1 lsl l)

let prop_bits_reconstruct =
  QCheck.Test.make ~name:"z = Σ z_k 2^k"
    QCheck.(int_range 0 (1 lsl 30))
    (fun z ->
      let l = Bits.length z in
      let sum = ref 0 in
      for k = 0 to l - 1 do
        sum := !sum + (Bits.bit z k lsl k)
      done;
      !sum = z)

let prop_first_diff_correct =
  QCheck.Test.make ~name:"first_differing_bit: bits agree below, differ at"
    QCheck.(pair (int_range 0 (1 lsl 30)) (int_range 0 (1 lsl 30)))
    (fun (x, y) ->
      match Bits.first_differing_bit x y with
      | None -> x = y
      | Some k ->
          Bits.bit x k <> Bits.bit y k
          && List.for_all (fun i -> Bits.bit x i = Bits.bit y i) (List.init k Fun.id))

(* --- log* ----------------------------------------------------------- *)

let test_log_star_values () =
  check Alcotest.int "log* 0" 0 (Logstar.log_star_int 0);
  check Alcotest.int "log* 1" 0 (Logstar.log_star_int 1);
  check Alcotest.int "log* 2" 1 (Logstar.log_star_int 2);
  check Alcotest.int "log* 3" 2 (Logstar.log_star_int 3);
  check Alcotest.int "log* 4" 2 (Logstar.log_star_int 4);
  check Alcotest.int "log* 5" 3 (Logstar.log_star_int 5);
  check Alcotest.int "log* 16" 3 (Logstar.log_star_int 16);
  check Alcotest.int "log* 17" 4 (Logstar.log_star_int 17);
  check Alcotest.int "log* 65536" 4 (Logstar.log_star_int 65536);
  check Alcotest.int "log* 65537" 5 (Logstar.log_star_int 65537);
  check Alcotest.int "log* max_int" 5 (Logstar.log_star_int max_int)

let test_tower () =
  check Alcotest.int "tower 0" 1 (Logstar.tower 0);
  check Alcotest.int "tower 1" 2 (Logstar.tower 1);
  check Alcotest.int "tower 2" 4 (Logstar.tower 2);
  check Alcotest.int "tower 3" 16 (Logstar.tower 3);
  check Alcotest.int "tower 4" 65536 (Logstar.tower 4);
  Alcotest.check_raises "tower 5 overflows"
    (Invalid_argument "Logstar.tower: overflow") (fun () ->
      ignore (Logstar.tower 5))

let test_tower_is_logstar_boundary () =
  for k = 0 to 4 do
    check Alcotest.int
      (Printf.sprintf "log*(tower %d) = %d" k k)
      k
      (Logstar.log_star_int (Logstar.tower k))
  done;
  for k = 1 to 4 do
    check Alcotest.int
      (Printf.sprintf "log*(tower %d + 1) = %d" k (k + 1))
      (k + 1)
      (Logstar.log_star_int (Logstar.tower k + 1))
  done

let prop_log_star_monotone =
  QCheck.Test.make ~name:"log* monotone"
    QCheck.(pair (int_range 0 (1 lsl 50)) (int_range 0 (1 lsl 50)))
    (fun (a, b) ->
      let x = min a b and y = max a b in
      Logstar.log_star_int x <= Logstar.log_star_int y)

(* --- reduce: the function f of Eq. (6) ------------------------------ *)

let test_f_worked_examples () =
  (* x = 1011b, y = 1001b: first differing bit is 1, x_1 = 1 -> 2*1+1 = 3 *)
  check Alcotest.int "11 vs 9" 3 (Reduce.f 11 9);
  (* equal values: i = |x| *)
  check Alcotest.int "equal 5,5" ((2 * 3) + 0) (Reduce.f 5 5);
  (* x = 100b, y = 0: differ at bit 2, but |y| = 0 cuts first: i=0, x_0=0 *)
  check Alcotest.int "4 vs 0" 0 (Reduce.f 4 0);
  (* x = 101b, y = 1b: first diff at bit 1? x=101,y=001 -> diff bit 2; |y|=1 -> i=1, x_1=0 *)
  check Alcotest.int "5 vs 1" 2 (Reduce.f 5 1)

let test_f_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Reduce.f: negative input")
    (fun () -> ignore (Reduce.f (-1) 3))

let prop_f_bound =
  QCheck.Test.make ~name:"f x y <= 2|x| + 1 (shrink bound)"
    QCheck.(pair (int_range 0 (1 lsl 50)) (int_range 0 (1 lsl 50)))
    (fun (x, y) -> Reduce.f x y <= Reduce.shrink_bound x)

let prop_lemma_4_2 =
  QCheck.Test.make ~name:"Lemma 4.2: x > y >= 10 => f x y < y" ~count:5_000
    QCheck.(pair (int_range 10 (1 lsl 50)) (int_range 10 (1 lsl 50)))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let x = max a b and y = min a b in
      Reduce.f x y < y)

let prop_lemma_4_3 =
  QCheck.Test.make ~name:"Lemma 4.3: x > y > z => f x y <> f y z" ~count:5_000
    QCheck.(triple (int_range 0 (1 lsl 50)) (int_range 0 (1 lsl 50)) (int_range 0 (1 lsl 50)))
    (fun (a, b, c) ->
      let x = max a (max b c) and z = min a (min b c) in
      let y = a + b + c - x - z in
      QCheck.assume (x > y && y > z);
      Reduce.f x y <> Reduce.f y z)

let prop_chain_preserves_coloring =
  (* Internal elements of a decreasing chain stay pairwise distinct after
     one reduction step (Lemma 4.3).  The *last* element is kept unreduced
     and CAN collide with its reduced neighbour (e.g. f 22 6 = 6) — which
     is exactly why Algorithm 3 line 15 only adopts Y when it still
     undercuts the smaller neighbour.  We therefore check all adjacent
     pairs except the final one. *)
  QCheck.Test.make ~name:"monotone chain: f-step keeps internal adjacents distinct"
    ~count:1_000
    QCheck.(list_of_size (Gen.int_range 3 12) (int_range 0 10_000))
    (fun l ->
      let chain = List.sort_uniq compare l |> List.rev in
      QCheck.assume (List.length chain >= 3);
      let reduced = Reduce.iterate_f_chain chain in
      let rec internal_distinct = function
        | a :: (b :: _ :: _ as rest) -> a <> b && internal_distinct rest
        | _ -> true
      in
      internal_distinct reduced)

let test_boundary_collision_motivates_guard () =
  (* The concrete collision documented above: the chain [x; 22; 6] reduces
     22 to f(22,6) = 6, colliding with the kept minimum — Algorithm 3's
     "if Y < min(X_q, X_q')" guard exists precisely to refuse this. *)
  check Alcotest.int "f 22 6 = 6" 6 (Reduce.f 22 6);
  check Alcotest.bool "guard would refuse: not (6 < 6)" false (Reduce.f 22 6 < 6)

let test_iterations_to_small () =
  check Alcotest.int "already small" 0 (Reduce.iterations_to_small 9);
  check Alcotest.int "10 -> 9" 1 (Reduce.iterations_to_small 10);
  check Alcotest.bool "huge converges fast" true
    (Reduce.iterations_to_small max_int <= 5)

let prop_lemma_4_1 =
  QCheck.Test.make ~name:"Lemma 4.1: iterations <= 4 log* x + 4"
    QCheck.(int_range 0 (1 lsl 60))
    (fun x ->
      Reduce.iterations_to_small x <= (4 * Logstar.log_star_int x) + 4)

let test_iterate_chain_shapes () =
  check Alcotest.(list int) "empty" [] (Reduce.iterate_f_chain []);
  check Alcotest.(list int) "singleton kept" [ 7 ] (Reduce.iterate_f_chain [ 7 ]);
  let reduced = Reduce.iterate_f_chain [ 100; 50; 20 ] in
  check Alcotest.int "length preserved" 3 (List.length reduced);
  check Alcotest.int "last kept" 20 (List.nth reduced 2)

let () =
  Alcotest.run "cv"
    [
      ( "bits",
        [
          Alcotest.test_case "length" `Quick test_length;
          Alcotest.test_case "bit" `Quick test_bit;
          Alcotest.test_case "first differing bit" `Quick test_first_differing_bit;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
          qtest prop_length_tight;
          qtest prop_bits_reconstruct;
          qtest prop_first_diff_correct;
        ] );
      ( "logstar",
        [
          Alcotest.test_case "values" `Quick test_log_star_values;
          Alcotest.test_case "tower" `Quick test_tower;
          Alcotest.test_case "tower boundary" `Quick test_tower_is_logstar_boundary;
          qtest prop_log_star_monotone;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "worked examples" `Quick test_f_worked_examples;
          Alcotest.test_case "negative rejected" `Quick test_f_rejects_negative;
          Alcotest.test_case "iterations_to_small" `Quick test_iterations_to_small;
          Alcotest.test_case "iterate chain shapes" `Quick test_iterate_chain_shapes;
          Alcotest.test_case "boundary collision motivates line-15 guard" `Quick
            test_boundary_collision_motivates_guard;
          qtest prop_f_bound;
          qtest prop_lemma_4_2;
          qtest prop_lemma_4_3;
          qtest prop_chain_preserves_coloring;
          qtest prop_lemma_4_1;
        ] );
    ]
