(* Tests for Algorithm 1 (wait-free 6-colouring of the cycle, paper §3.1):
   unit scenarios pinned to the lemmas, property-based sweeps of
   Theorem 3.1, and exhaustive model checking on tiny cycles. *)

module A1 = Asyncolor.Algorithm1
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Explorer = Asyncolor_check.Explorer.Make (A1.P)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t
let pair = Alcotest.(pair int int)

let validate ?(budget = 2) n outputs =
  Checker.check
    ~equal:(fun a b -> a = b)
    ~in_palette:(Color.pair_in_palette ~budget)
    (Builders.cycle n) outputs

(* --- pinned scenarios ------------------------------------------------ *)

let test_solo_returns_immediately () =
  (* A process whose neighbours never wake sees ⊥ ⊥: no conflict, returns
     its initial (0,0) at the first activation (basis of wait-freedom). *)
  let e = A1.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  A1.E.activate e [ 0 ];
  check (Alcotest.option pair) "returned (0,0)" (Some (0, 0))
    (Status.output (A1.E.status e 0))

let test_conflict_then_resolve () =
  (* Sequential wake-up on C3: p0 returns (0,0); p1 (smaller id 1 < 5)
     conflicts?  p1's colour (0,0) = p0's: conflict, so p1 misses and
     recomputes; at its next activation it returns a different colour. *)
  let e = A1.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  A1.E.activate e [ 0 ];
  A1.E.activate e [ 1 ];
  check Alcotest.bool "p1 missed" true (Status.is_working (A1.E.status e 1));
  A1.E.activate e [ 1 ];
  (match Status.output (A1.E.status e 1) with
  | Some c -> check Alcotest.bool "differs from p0" true (c <> (0, 0))
  | None -> Alcotest.fail "p1 should have returned");
  check Alcotest.bool "still proper" true
    (Checker.ok (validate 3 (A1.E.outputs e)))

let test_local_extremum_fast () =
  (* Lemma 3.4 corollary: local extrema return within 4 activations under
     any schedule; test the global max and min under round robin. *)
  let idents = [| 3; 9; 5; 7; 1; 8 |] in
  let e = A1.E.create (Builders.cycle 6) ~idents in
  let r = A1.E.run e Adversary.round_robin in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.bool "max (p1) fast" true (r.activations_per_process.(1) <= 4);
  check Alcotest.bool "min (p4) fast" true (r.activations_per_process.(4) <= 4)

let test_monotone_bound_formula () =
  check Alcotest.int "bound n=3" 8 (A1.activation_bound 3);
  check Alcotest.int "bound n=10" 19 (A1.activation_bound 10);
  check Alcotest.int "lemma 3.9 formula: min(15,6,7)+4" 10 (A1.monotone_bound ~l:5 ~l':2);
  check Alcotest.int "lemma 3.9 min 3l" (3 + 4) (A1.monotone_bound ~l:1 ~l':100)

let test_max_sticks_to_a_zero () =
  (* The proof of Lemma 3.4: a local maximum keeps a = 0 forever. *)
  let e = A1.E.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
  for _ = 1 to 5 do
    A1.E.activate e [ 0; 1; 2 ];
    match A1.E.status e 2 with
    | Status.Working -> check Alcotest.int "a stays 0" 0 (A1.E.state e 2).A1.a
    | Status.Returned (a, _) -> check Alcotest.int "returned a=0" 0 a
    | Status.Asleep -> Alcotest.fail "p2 awake"
  done

let test_crash_mid_run_safe () =
  let idents = Idents.increasing 8 in
  let adv = Adversary.crash ~at:2 ~procs:[ 3; 4 ] Adversary.synchronous in
  let r = A1.run_on_cycle ~idents adv in
  check Alcotest.bool "survivors proper" true (Checker.ok (validate 8 r.outputs));
  check Alcotest.bool "schedule ended by crash or done" true
    (r.all_returned || r.schedule_ended)

(* --- property-based Theorem 3.1 ------------------------------------- *)

let arb_scenario =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 40) (int_range 0 10_000))

let run_random_scenario (n, seed) =
  let prng = Prng.create ~seed in
  let idents = Idents.random_permutation (Prng.split prng) n in
  let adv = Adversary.random_subsets (Prng.split prng) ~p:0.5 in
  (idents, A1.run_on_cycle ~idents adv)

let prop_terminates_within_bound =
  QCheck.Test.make ~name:"Theorem 3.1: rounds <= 3n/2+4" ~count:300 arb_scenario
    (fun (n, seed) ->
      let _, r = run_random_scenario (n, seed) in
      r.all_returned && r.rounds <= A1.activation_bound n)

let prop_proper_and_palette =
  QCheck.Test.make ~name:"Theorem 3.1: proper colouring, palette a+b<=2" ~count:300
    arb_scenario (fun (n, seed) ->
      let _, r = run_random_scenario (n, seed) in
      Checker.ok (validate n r.outputs))

let prop_monotone_distance_bound =
  (* Lemma 3.9 for the monotone workload: process i on the increasing ring
     has l = i, l' = n-i monotone distances (indices 1..n-1); apply the
     formula per process under the synchronous schedule. *)
  QCheck.Test.make ~name:"Lemma 3.9: per-process activation bound" ~count:100
    QCheck.(int_range 4 60)
    (fun n ->
      let idents = Idents.increasing n in
      let r = A1.run_on_cycle ~idents Adversary.synchronous in
      r.all_returned
      && Array.for_all Fun.id
           (Array.init n (fun i ->
                let bound =
                  if i = 0 || i = n - 1 then 4 (* extrema *)
                  else A1.monotone_bound ~l:i ~l':(n - i)
                in
                r.activations_per_process.(i) <= bound)))

let prop_zigzag_constant_time =
  QCheck.Test.make ~name:"zigzag workload: O(1) rounds" ~count:50
    QCheck.(int_range 4 200)
    (fun n ->
      let r = A1.run_on_cycle ~idents:(Idents.zigzag n) Adversary.synchronous in
      r.all_returned && r.rounds <= 10)

(* --- exhaustive ------------------------------------------------------ *)

let test_exhaustive_c3_c4 () =
  List.iter
    (fun idents ->
      let n = Array.length idents in
      let g = Builders.cycle n in
      let check_outputs outs =
        if Checker.ok (validate n outs) then None else Some "bad colouring"
      in
      let r = Explorer.explore g ~idents ~check_outputs in
      check Alcotest.bool "complete" true r.complete;
      check Alcotest.bool "wait-free in FULL model" true r.wait_free;
      check Alcotest.(list unit) "no violations" []
        (List.map (fun _ -> ()) r.safety);
      check Alcotest.bool "worst within theorem bound" true
        (r.worst_case_activations <= A1.activation_bound n))
    [ [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 1; 2; 0 |]; [| 9; 4; 7; 2 |]; [| 0; 1; 2; 3 |] ]

let () =
  Alcotest.run "algorithm1"
    [
      ( "scenarios",
        [
          Alcotest.test_case "solo returns immediately" `Quick
            test_solo_returns_immediately;
          Alcotest.test_case "conflict then resolve" `Quick test_conflict_then_resolve;
          Alcotest.test_case "local extrema fast" `Quick test_local_extremum_fast;
          Alcotest.test_case "bound formulas" `Quick test_monotone_bound_formula;
          Alcotest.test_case "max pins a=0" `Quick test_max_sticks_to_a_zero;
          Alcotest.test_case "crash mid-run safe" `Quick test_crash_mid_run_safe;
        ] );
      ( "theorem 3.1",
        [
          qtest prop_terminates_within_bound;
          qtest prop_proper_and_palette;
          qtest prop_monotone_distance_bound;
          qtest prop_zigzag_constant_time;
        ] );
      ( "exhaustive",
        [ Alcotest.test_case "C3/C4 all schedules" `Slow test_exhaustive_c3_c4 ] );
    ]
