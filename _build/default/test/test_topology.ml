(* Tests for Asyncolor_topology: graph construction invariants, the
   builder families, DOT export. *)

module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Dot = Asyncolor_topology.Dot
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- construction -------------------------------------------------- *)

let test_make_basic () =
  let g = Graph.make ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  check Alcotest.int "n" 4 (Graph.n g);
  check Alcotest.int "m" 3 (Graph.m g);
  check Alcotest.(array int) "nbrs of 1" [| 0; 2 |] (Graph.neighbours g 1);
  check Alcotest.bool "edge 0-1" true (Graph.mem_edge g 0 1);
  check Alcotest.bool "edge 1-0 symmetric" true (Graph.mem_edge g 1 0);
  check Alcotest.bool "no edge 0-3" false (Graph.mem_edge g 0 3)

let test_make_dedup () =
  let g = Graph.make ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1) ] in
  check Alcotest.int "one edge" 1 (Graph.m g)

let test_make_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop")
    (fun () -> ignore (Graph.make ~n:3 ~edges:[ (1, 1) ]))

let test_make_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.make: node 5 out of range [0,3)") (fun () ->
      ignore (Graph.make ~n:3 ~edges:[ (0, 5) ]))

let test_empty_graph () =
  let g = Graph.make ~n:0 ~edges:[] in
  check Alcotest.int "n" 0 (Graph.n g);
  check Alcotest.int "max degree" 0 (Graph.max_degree g);
  check Alcotest.bool "connected (vacuous)" true (Graph.is_connected g)

let test_edges_canonical () =
  let g = Graph.make ~n:4 ~edges:[ (3, 2); (1, 0) ] in
  check
    Alcotest.(list (pair int int))
    "edges sorted, u<v"
    [ (0, 1); (2, 3) ]
    (Graph.edges g)

let test_fold_edges () =
  let g = Builders.cycle 5 in
  let count = Graph.fold_edges (fun _ _ acc -> acc + 1) g 0 in
  check Alcotest.int "fold visits each edge once" 5 count

let test_connectivity () =
  let disconnected = Graph.make ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  check Alcotest.bool "disconnected" false (Graph.is_connected disconnected);
  check Alcotest.bool "cycle connected" true (Graph.is_connected (Builders.cycle 7))

let test_is_cycle () =
  check Alcotest.bool "C5" true (Graph.is_cycle (Builders.cycle 5));
  check Alcotest.bool "path" false (Graph.is_cycle (Builders.path 5));
  check Alcotest.bool "K4" false (Graph.is_cycle (Builders.complete 4));
  (* two disjoint triangles: 2-regular but disconnected *)
  let two_triangles =
    Graph.make ~n:6 ~edges:[ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  check Alcotest.bool "2-regular but disconnected" false (Graph.is_cycle two_triangles)

let test_equal () =
  check Alcotest.bool "structural equality" true
    (Graph.equal (Builders.cycle 4) (Graph.make ~n:4 ~edges:[ (0,1); (1,2); (2,3); (3,0) ]))

(* --- builders ------------------------------------------------------ *)

let test_cycle () =
  let g = Builders.cycle 6 in
  check Alcotest.int "m" 6 (Graph.m g);
  for v = 0 to 5 do
    check Alcotest.int "degree 2" 2 (Graph.degree g v)
  done;
  Alcotest.check_raises "n<3" (Invalid_argument "Builders.cycle: need n >= 3")
    (fun () -> ignore (Builders.cycle 2))

let test_path () =
  let g = Builders.path 5 in
  check Alcotest.int "m" 4 (Graph.m g);
  check Alcotest.int "endpoint degree" 1 (Graph.degree g 0);
  check Alcotest.int "inner degree" 2 (Graph.degree g 2);
  check Alcotest.int "single node" 0 (Graph.m (Builders.path 1))

let test_complete () =
  let g = Builders.complete 5 in
  check Alcotest.int "m" 10 (Graph.m g);
  check Alcotest.int "degree" 4 (Graph.max_degree g);
  check Alcotest.bool "K3 is C3" true (Graph.equal (Builders.complete 3) (Builders.cycle 3))

let test_star () =
  let g = Builders.star 7 in
  check Alcotest.int "centre degree" 6 (Graph.degree g 0);
  check Alcotest.int "leaf degree" 1 (Graph.degree g 3);
  check Alcotest.int "m" 6 (Graph.m g)

let test_grid () =
  let g = Builders.grid 3 4 in
  check Alcotest.int "n" 12 (Graph.n g);
  check Alcotest.int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  check Alcotest.int "corner degree" 2 (Graph.degree g 0);
  check Alcotest.int "max degree" 4 (Graph.max_degree g);
  check Alcotest.bool "connected" true (Graph.is_connected g)

let test_torus () =
  let g = Builders.torus 4 5 in
  check Alcotest.int "n" 20 (Graph.n g);
  check Alcotest.int "m" 40 (Graph.m g);
  for v = 0 to 19 do
    check Alcotest.int "4-regular" 4 (Graph.degree g v)
  done

let test_petersen () =
  let g = Builders.petersen () in
  check Alcotest.int "n" 10 (Graph.n g);
  check Alcotest.int "m" 15 (Graph.m g);
  for v = 0 to 9 do
    check Alcotest.int "3-regular" 3 (Graph.degree g v)
  done;
  check Alcotest.bool "connected" true (Graph.is_connected g)

let test_hypercube () =
  let g = Builders.hypercube 4 in
  check Alcotest.int "n" 16 (Graph.n g);
  check Alcotest.int "m" 32 (Graph.m g);
  for v = 0 to 15 do
    check Alcotest.int "4-regular" 4 (Graph.degree g v)
  done;
  check Alcotest.int "d=0" 1 (Graph.n (Builders.hypercube 0))

let test_random_regular () =
  let prng = Prng.create ~seed:99 in
  let g = Builders.random_regular prng ~n:20 ~d:3 in
  check Alcotest.int "n" 20 (Graph.n g);
  for v = 0 to 19 do
    check Alcotest.int "3-regular" 3 (Graph.degree g v)
  done;
  Alcotest.check_raises "odd product"
    (Invalid_argument "Builders.random_regular: n*d must be even") (fun () ->
      ignore (Builders.random_regular prng ~n:5 ~d:3))

let test_gnp () =
  let prng = Prng.create ~seed:101 in
  let empty = Builders.gnp prng ~n:20 ~p:0.0 in
  check Alcotest.int "p=0 edges" 0 (Graph.m empty);
  let full = Builders.gnp prng ~n:20 ~p:1.0 in
  check Alcotest.int "p=1 edges" 190 (Graph.m full)

let prop_gnp_valid =
  QCheck.Test.make ~name:"gnp: simple symmetric graph" ~count:50
    QCheck.(pair (int_range 1 30) (int_range 0 100))
    (fun (n, pct) ->
      let prng = Prng.create ~seed:(n + (pct * 31)) in
      let g = Builders.gnp prng ~n ~p:(float_of_int pct /. 100.0) in
      Graph.fold_edges
        (fun u v acc -> acc && u < v && Graph.mem_edge g v u && u <> v)
        g true)

(* --- dot ----------------------------------------------------------- *)

let test_dot_contains_edges () =
  let s = Dot.to_string (Builders.cycle 3) in
  check Alcotest.bool "has edge 0--1" true
    (Astring.String.is_infix ~affix:"0 -- 1" s);
  check Alcotest.bool "has graph header" true
    (Astring.String.is_prefix ~affix:"graph" s)

let test_dot_colors () =
  let s =
    Dot.to_string
      ~colors:(fun v -> if v = 0 then Some 0 else None)
      (Builders.cycle 3)
  in
  check Alcotest.bool "fill for node 0" true
    (Astring.String.is_infix ~affix:"fillcolor=\"#e6194b\"" s)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "make basic" `Quick test_make_basic;
          Alcotest.test_case "dedup" `Quick test_make_dedup;
          Alcotest.test_case "reject self-loop" `Quick test_make_rejects_self_loop;
          Alcotest.test_case "reject out-of-range" `Quick test_make_rejects_out_of_range;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
          Alcotest.test_case "fold_edges" `Quick test_fold_edges;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "is_cycle" `Quick test_is_cycle;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "builders",
        [
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "gnp extremes" `Quick test_gnp;
          qtest prop_gnp_valid;
        ] );
      ( "dot",
        [
          Alcotest.test_case "edges rendered" `Quick test_dot_contains_edges;
          Alcotest.test_case "colors rendered" `Quick test_dot_colors;
        ] );
    ]
