(* Tests for Algorithm 3 (wait-free 5-colouring in O(log* n), paper §4):
   the Lemma 4.5 identifier invariant monitored at every step, identifier
   monotonicity, rank monotonicity, Theorem 4.4 sweeps at large n, and
   exhaustive checks on C3. *)

module A3 = Asyncolor.Algorithm3
module Rank = Asyncolor.Rank
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Logstar = Asyncolor_cv.Logstar
module Explorer = Asyncolor_check.Explorer.Make (A3.P)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let validate n outputs =
  Checker.check ~equal:Int.equal ~in_palette:Color.in_five (Builders.cycle n) outputs

(* --- rank ------------------------------------------------------------ *)

let test_rank_order () =
  check Alcotest.bool "0 <= inf" true Rank.(zero <= Inf);
  check Alcotest.bool "inf <= 0 fails" false Rank.(Inf <= zero);
  check Alcotest.bool "inf <= inf" true Rank.(Inf <= Inf);
  check Alcotest.int "compare fin" (-1) (Rank.compare (Rank.Fin 1) (Rank.Fin 2));
  check Alcotest.bool "succ fin" true (Rank.equal (Rank.succ (Rank.Fin 3)) (Rank.Fin 4));
  check Alcotest.bool "succ inf" true (Rank.equal (Rank.succ Rank.Inf) Rank.Inf);
  check Alcotest.bool "min" true (Rank.equal (Rank.min Rank.Inf (Rank.Fin 7)) (Rank.Fin 7));
  check Alcotest.bool "finite" true (Rank.is_finite Rank.zero);
  check Alcotest.bool "inf not finite" false (Rank.is_finite Rank.Inf)

(* --- pinned scenarios ------------------------------------------------- *)

let test_solo_returns () =
  let e = A3.E.create (Builders.cycle 3) ~idents:[| 12; 47; 30 |] in
  A3.E.activate e [ 2 ];
  check Alcotest.(option int) "solo returns 0" (Some 0)
    (Status.output (A3.E.status e 2))

let test_identifier_coloring_invariant_monitored () =
  (* Lemma 4.5 asserted at EVERY time step of adversarial runs. *)
  List.iter
    (fun seed ->
      let n = 24 in
      let prng = Prng.create ~seed in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe:(n * n) in
      let e = A3.E.create (Builders.cycle n) ~idents in
      A3.E.set_monitor e A3.monitor_identifier_coloring;
      let r = A3.E.run e (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
      check Alcotest.bool "terminated" true r.all_returned;
      check Alcotest.bool "proper" true (Checker.ok (validate n r.outputs)))
    [ 1; 2; 3; 4; 5 ]

let test_identifiers_never_increase () =
  let n = 16 in
  let idents = Idents.increasing n in
  let e = A3.E.create (Builders.cycle n) ~idents in
  let prev = Array.map (fun x -> x) idents in
  A3.E.set_monitor e (fun e ->
      for p = 0 to n - 1 do
        match A3.E.status e p with
        | Status.Working ->
            let x = (A3.E.state e p).A3.x in
            if x > prev.(p) then Alcotest.failf "X increased at p%d" p;
            prev.(p) <- x
        | Status.Asleep | Status.Returned _ -> ()
      done);
  ignore (A3.E.run e Adversary.synchronous)

let test_ranks_never_decrease () =
  let n = 16 in
  let e = A3.E.create (Builders.cycle n) ~idents:(Idents.increasing n) in
  let prev = Array.make n Rank.zero in
  A3.E.set_monitor e (fun e ->
      for p = 0 to n - 1 do
        match A3.E.status e p with
        | Status.Working ->
            let r = (A3.E.state e p).A3.r in
            if not Rank.(prev.(p) <= r) then Alcotest.failf "rank decreased at p%d" p;
            prev.(p) <- r
        | Status.Asleep | Status.Returned _ -> ()
      done);
  ignore (A3.E.run e Adversary.synchronous)

let test_blocked_neighbour_does_not_block_coloring () =
  (* A crashed neighbour freezes its r forever; the colouring component
     must still terminate (wait-freedom does not rest on lines 11-19). *)
  let idents = Idents.increasing 8 in
  let adv = Adversary.crash ~at:2 ~procs:[ 0; 4 ] Adversary.round_robin in
  let r = A3.run_on_cycle ~idents adv in
  check Alcotest.bool "survivors done or crashed" true
    (r.all_returned || r.schedule_ended);
  check Alcotest.bool "proper" true (Checker.ok (validate 8 r.outputs))

let test_lemma_4_6_local_max_stays_max () =
  (* Once X_p is a local maximum it stays one: neighbours only decrease. *)
  let n = 10 in
  let idents = Idents.random_permutation (Prng.create ~seed:77) n in
  let e = A3.E.create (Builders.cycle n) ~idents in
  let was_max = Array.make n false in
  A3.E.set_monitor e (fun e ->
      (* Paper definition: p is a local maximum at time t if its (private)
         X_p exceeds both neighbours' *published* identifiers. *)
      let published p =
        Option.map (fun (r : A3.fields) -> r.A3.x) (A3.E.public e p)
      in
      let private_x p =
        match A3.E.status e p with
        | Status.Working -> Some (A3.E.state e p).A3.x
        | Status.Asleep -> None
        | Status.Returned _ -> published p
      in
      for p = 0 to n - 1 do
        match private_x p with
        | None -> ()
        | Some xp ->
            let lo = published ((p + n - 1) mod n)
            and hi = published ((p + 1) mod n) in
            let is_max =
              (match lo with Some v -> xp > v | None -> false)
              && match hi with Some v -> xp > v | None -> false
            in
            if was_max.(p) && not is_max then
              Alcotest.failf "p%d stopped being a local max" p;
            if is_max then was_max.(p) <- true
      done);
  ignore (A3.E.run e Adversary.synchronous)

(* --- Theorem 4.4 ------------------------------------------------------ *)

let prop_logstar_rounds_random =
  QCheck.Test.make ~name:"Theorem 4.4: rounds <= O(log* n), random idents"
    ~count:100
    QCheck.(pair (int_range 3 2000) (int_range 0 10_000))
    (fun (n, seed) ->
      let prng = Prng.create ~seed in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe:(max 64 (n * n)) in
      let r = A3.run_on_cycle ~idents (Adversary.random_subsets (Prng.split prng) ~p:0.6) in
      r.all_returned
      && r.rounds <= A3.activation_bound n
      && Checker.ok (validate n r.outputs))

let prop_logstar_rounds_monotone =
  QCheck.Test.make ~name:"Theorem 4.4: monotone chains collapse" ~count:20
    QCheck.(int_range 64 4096)
    (fun n ->
      let r = A3.run_on_cycle ~idents:(Idents.increasing n) Adversary.synchronous in
      (* flat in n: a fixed small constant suffices empirically *)
      r.all_returned && r.rounds <= 8 + (2 * Logstar.log_star_int n))

let test_large_ring () =
  let n = 1 lsl 17 in
  let idents = Idents.increasing n in
  let r = A3.run_on_cycle ~idents Adversary.synchronous in
  check Alcotest.bool "terminates" true r.all_returned;
  check Alcotest.bool "few rounds" true (r.rounds <= 16);
  check Alcotest.bool "proper" true (Checker.ok (validate n r.outputs))

(* --- exhaustive -------------------------------------------------------- *)

let test_exhaustive_interleaved_c3 () =
  List.iter
    (fun idents ->
      let g = Builders.cycle 3 in
      let check_outputs outs =
        if Checker.ok (validate 3 outs) then None else Some "bad colouring"
      in
      let check_config e =
        match A3.monitor_identifier_coloring e with
        | () -> None
        | exception Failure msg -> Some msg
      in
      let r = Explorer.explore ~mode:`Singletons g ~idents ~check_outputs ~check_config in
      check Alcotest.bool "complete" true r.complete;
      check Alcotest.bool "wait-free interleaved" true r.wait_free;
      check Alcotest.int "no violations (colouring + Lemma 4.5)" 0
        (List.length r.safety))
    [ [| 12; 47; 30 |]; [| 0; 1; 2 |]; [| 100; 10; 55 |] ]

let test_exhaustive_interleaved_c4 () =
  let g = Builders.cycle 4 in
  let r = Explorer.explore ~mode:`Singletons g ~idents:[| 12; 47; 30; 21 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "wait-free" true r.wait_free;
  check Alcotest.bool "small exact worst" true (r.worst_case_activations <= 6)

let test_exhaustive_simultaneous_lock () =
  let g = Builders.cycle 3 in
  let r = Explorer.explore g ~idents:[| 12; 47; 30 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "F1 also affects Algorithm 3" false r.wait_free

let () =
  Alcotest.run "algorithm3"
    [
      ("rank", [ Alcotest.test_case "order" `Quick test_rank_order ]);
      ( "scenarios",
        [
          Alcotest.test_case "solo returns" `Quick test_solo_returns;
          Alcotest.test_case "Lemma 4.5 monitored" `Quick
            test_identifier_coloring_invariant_monitored;
          Alcotest.test_case "X never increases" `Quick test_identifiers_never_increase;
          Alcotest.test_case "ranks never decrease" `Quick test_ranks_never_decrease;
          Alcotest.test_case "crashes don't block colouring" `Quick
            test_blocked_neighbour_does_not_block_coloring;
          Alcotest.test_case "Lemma 4.6: local max stays" `Quick
            test_lemma_4_6_local_max_stays_max;
        ] );
      ( "theorem 4.4",
        [
          qtest prop_logstar_rounds_random;
          qtest prop_logstar_rounds_monotone;
          Alcotest.test_case "ring of 131072" `Slow test_large_ring;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "interleaved C3 (+Lemma 4.5)" `Slow
            test_exhaustive_interleaved_c3;
          Alcotest.test_case "interleaved C4" `Slow test_exhaustive_interleaved_c4;
          Alcotest.test_case "simultaneous C3 locks" `Slow
            test_exhaustive_simultaneous_lock;
        ] );
    ]
