(* Why the paper's model is hard: a tale of two asynchronies (paper §1.4).

   In the DECOUPLED model [13, 18] only the *processes* are asynchronous
   and crash-prone; the network stays synchronous and reliable, relaying
   inputs whether or not their owners are alive.  There, 3-colouring the
   ring — even C3 — is easy.  In the paper's fully asynchronous state
   model, where a slow process also silences its register updates,
   Property 2.3 proves 5 colours are necessary.  This example runs both
   models on the same rings.

   Run with: dune exec examples/model_separation.exe *)

module D = Asyncolor_local.Decoupled_ring
module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng
module Idents = Asyncolor_workload.Idents

let show outs =
  String.concat ""
    (Array.to_list
       (Array.map (function Some c -> string_of_int c | None -> "x") outs))

let () =
  (* DECOUPLED on C3: three colours, the thing Property 2.3 forbids in the
     paper's model. *)
  let d = D.create ~idents:[| 5; 1; 9 |] ~universe:16 in
  let outs, rounds = D.run Adversary.synchronous d in
  Printf.printf "DECOUPLED C3: colours %s in %d global rounds (3-colouring!)\n"
    (show outs) rounds;
  assert (D.is_proper_partial outs);

  (* State model on C3: Algorithm 3 — 5 colours available, and exhaustive
     model checking (experiment E6) shows all 5 are needed. *)
  let r3 =
    Asyncolor.Algorithm3.run_on_cycle ~idents:[| 5; 1; 9 |]
      (Adversary.singletons (Prng.create ~seed:3))
  in
  Printf.printf "state model C3 (Algorithm 3): colours %s from palette {0..4}\n\n"
    (show r3.outputs);

  (* Crashes: in DECOUPLED a crashed node's identifier keeps propagating,
     so its neighbours never even notice.  Crash a third of a 48-ring. *)
  let n = 48 in
  let prng = Prng.create ~seed:7 in
  let universe = 4 * n in
  let idents = Idents.random_sparse (Prng.split prng) ~n ~universe in
  let dec = D.create ~idents ~universe in
  let crashed = [ 0; 5; 6; 7; 20; 21; 33; 40; 41; 42; 43; 44; 45; 46; 47; 13 ] in
  let adv = Adversary.crash ~at:1 ~procs:crashed Adversary.synchronous in
  let outs, rounds = D.run adv dec in
  Printf.printf "DECOUPLED C%d with %d crashes: %s\n" n (List.length crashed) (show outs);
  Printf.printf "  survivors properly 3-coloured: %b, in %d rounds (log* %d ≈ %d)\n"
    (D.is_proper_partial outs) rounds universe
    (Asyncolor_cv.Logstar.log_star_int universe);
  assert (D.is_proper_partial outs)
