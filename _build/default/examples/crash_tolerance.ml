(* Crash tolerance: the model's raison d'être.

   A third of the ring crashes at random times — some before ever waking,
   some mid-protocol with a half-updated register frozen in place.  The
   survivors still terminate quickly and properly colour the subgraph they
   induce.  We print who crashed, who decided what, and validate.

   Run with: dune exec examples/crash_tolerance.exe *)

module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng
module E = Asyncolor.Algorithm3.E

let () =
  let n = 32 in
  let prng = Prng.create ~seed:2024 in
  let idents = Asyncolor_workload.Idents.random_permutation (Prng.split prng) n in
  let graph = Asyncolor_topology.Builders.cycle n in

  (* Crash each process with probability 1/3 at a time uniform in [1,12],
     on top of a random base schedule. *)
  let adversary =
    Adversary.random_crashes (Prng.split prng) ~n ~rate:0.34 ~horizon:12
      (Adversary.random_subsets (Prng.split prng) ~p:0.6)
  in

  let engine = E.create ~record_trace:true graph ~idents in
  let result = E.run engine adversary in

  let crashed = ref 0 in
  let line = Buffer.create 128 in
  Array.iteri
    (fun p colour ->
      match colour with
      | Some c -> Buffer.add_string line (string_of_int c)
      | None ->
          incr crashed;
          Buffer.add_char line (if E.activations engine p = 0 then '.' else 'x'))
    result.outputs;
  Printf.printf "ring of %d, %d crashed ('.': before waking, 'x': mid-protocol)\n" n !crashed;
  Printf.printf "colours around the ring: %s\n" (Buffer.contents line);

  let verdict =
    Asyncolor.Checker.check ~equal:Int.equal ~in_palette:Asyncolor.Color.in_five graph
      result.outputs
  in
  Printf.printf "survivors: %d | properly coloured: %b | worst activations: %d\n"
    verdict.returned verdict.proper result.rounds;
  assert (Asyncolor.Checker.ok verdict);

  (* the execution, process by process: '#' = took a round, 'R' = returned,
     '_' = already done, '·' = idle (a column going silent = a crash) *)
  Format.printf "\nspace-time diagram (time ↓, processes →):@.%a@." E.pp_spacetime engine;

  (* A process whose *both* neighbours crashed before waking decides after
     one activation: it sees ⊥ ⊥, nothing conflicts. *)
  let solo_adv = Adversary.crash ~at:1 ~procs:[ 1; 3 ] Adversary.synchronous in
  let solo_engine = E.create (Asyncolor_topology.Builders.cycle 4) ~idents:[| 8; 3; 6; 2 |] in
  let solo = E.run solo_engine solo_adv in
  Printf.printf "\nisolated process demo (both neighbours crashed): p2 decided %s after %d activation(s)\n"
    (match solo.outputs.(2) with Some c -> string_of_int c | None -> "-")
    solo.activations_per_process.(2)
