examples/model_separation.mli:
