examples/quickstart.mli:
