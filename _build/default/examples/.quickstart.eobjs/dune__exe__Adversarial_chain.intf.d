examples/adversarial_chain.mli:
