examples/renaming_c3.mli:
