examples/renaming_c3.ml: Array Asyncolor Asyncolor_check Asyncolor_kernel Asyncolor_shm Asyncolor_topology Hashtbl List Printf String
