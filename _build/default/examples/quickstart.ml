(* Quickstart: wait-free 5-colouring of an asynchronous ring.

   Ten crash-prone processes sit on a cycle; each can only read its two
   neighbours' registers.  We drive them with a random asynchronous
   schedule and watch every process decide a colour in {0..4} such that
   neighbours differ — in O(log* n) activations each (Algorithm 3 of
   Fraigniaud, Lambein-Monette & Rabie, PODC 2022).

   Run with: dune exec examples/quickstart.exe *)

module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng

let () =
  let n = 10 in
  (* Unique identifiers — here random values from a poly(n) universe. *)
  let idents =
    Asyncolor_workload.Idents.random_sparse (Prng.create ~seed:7) ~n ~universe:(n * n)
  in
  (* An adversarial schedule: each step activates a random subset. *)
  let adversary = Adversary.random_subsets (Prng.create ~seed:8) ~p:0.5 in
  let result = Asyncolor.Algorithm3.run_on_cycle ~idents adversary in

  Printf.printf "ring of %d processes, random asynchronous schedule\n\n" n;
  Array.iteri
    (fun p colour ->
      match colour with
      | Some c -> Printf.printf "  process %d (id %2d) -> colour %d\n" p idents.(p) c
      | None -> Printf.printf "  process %d (id %2d) -> crashed\n" p idents.(p))
    result.outputs;

  (* Validate the two guarantees of Theorem 4.4. *)
  let graph = Asyncolor_topology.Builders.cycle n in
  let verdict =
    Asyncolor.Checker.check ~equal:Int.equal ~in_palette:Asyncolor.Color.in_five graph
      result.outputs
  in
  Printf.printf
    "\nproper colouring: %b | palette {0..4}: %b | max activations per process: %d\n"
    verdict.proper
    (verdict.off_palette = [])
    result.rounds;
  assert (Asyncolor.Checker.ok verdict)
