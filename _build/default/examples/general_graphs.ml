(* Beyond the cycle: Algorithm 4 on arbitrary graphs (paper Appendix A).

   The same write-read-update round colours any graph of maximum degree Δ
   wait-free with the pair palette {(a,b) : a+b ≤ Δ} — O(Δ²) colours.  We
   colour the Petersen graph and a grid under an asynchronous schedule,
   validate, and export DOT renderings to /tmp for inspection.

   Run with: dune exec examples/general_graphs.exe *)

module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Dot = Asyncolor_topology.Dot

let colour_and_report name graph ~seed =
  let n = Graph.n graph in
  let delta = Graph.max_degree graph in
  let idents = Asyncolor_workload.Idents.random_permutation (Prng.create ~seed) n in
  let adversary = Adversary.random_subsets (Prng.create ~seed:(seed + 1)) ~p:0.5 in
  let result = Asyncolor.Algorithm4.run graph ~idents adversary in
  let verdict =
    Asyncolor.Checker.check
      ~equal:(fun a b -> a = b)
      ~in_palette:(Asyncolor.Algorithm4.in_palette ~max_degree:delta)
      graph result.outputs
  in
  Printf.printf
    "%-12s n=%-3d Δ=%d palette=%d colours used=%d rounds=%d proper=%b\n" name n delta
    (Asyncolor.Algorithm4.palette_size ~max_degree:delta)
    verdict.distinct_colors result.rounds verdict.proper;
  assert (Asyncolor.Checker.ok verdict && result.all_returned);
  let path = Printf.sprintf "/tmp/asyncolor_%s.dot" name in
  Dot.write_file path graph
    ~labels:(fun v ->
      match result.outputs.(v) with
      | Some (a, b) -> Printf.sprintf "%d:(%d,%d)" v a b
      | None -> string_of_int v)
    ~colors:(fun v -> Option.map Asyncolor.Color.pair_index result.outputs.(v));
  Printf.printf "             rendered to %s\n" path

let () =
  colour_and_report "petersen" (Builders.petersen ()) ~seed:11;
  colour_and_report "grid8x8" (Builders.grid 8 8) ~seed:12;
  colour_and_report "hypercube5" (Builders.hypercube 5) ~seed:13;
  colour_and_report "random4reg" (Builders.random_regular (Prng.create ~seed:14) ~n:40 ~d:4) ~seed:15
