(* The paper's headline, §4: why identifier reduction matters.

   When identifiers increase monotonically around the ring, Algorithms 1-2
   converge only as fast as information can creep along the chain — Θ(n)
   activations.  Algorithm 3 shrinks the identifiers Cole-Vishkin-style in
   parallel with the colouring, collapsing every monotone chain to length
   < 10 within O(log* n) rounds.  Same workload, same schedules.

   Run with: dune exec examples/adversarial_chain.exe *)

module Adversary = Asyncolor_kernel.Adversary
module Table = Asyncolor_workload.Table
module Logstar = Asyncolor_cv.Logstar

let () =
  let table =
    Table.create ~headers:[ "n"; "log* n"; "alg1 rounds"; "alg2 rounds"; "alg3 rounds" ]
  in
  List.iter
    (fun n ->
      let idents = Asyncolor_workload.Idents.increasing n in
      let r1 = Asyncolor.Algorithm1.run_on_cycle ~idents Adversary.synchronous in
      let r2 = Asyncolor.Algorithm2.run_on_cycle ~idents Adversary.synchronous in
      let r3 = Asyncolor.Algorithm3.run_on_cycle ~idents Adversary.synchronous in
      assert (r1.all_returned && r2.all_returned && r3.all_returned);
      Table.add_row table
        (Table.row_int [ n; Logstar.log_star_int n; r1.rounds; r2.rounds; r3.rounds ]))
    [ 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384 ];
  print_endline "monotone identifier chain (worst case for Algorithms 1-2):\n";
  Table.print table;
  print_endline
    "\nAlgorithms 1-2 grow linearly; Algorithm 3 tracks log* n — at n=16384 the\n\
     whole ring 5-colours itself asynchronously in a handful of activations."
