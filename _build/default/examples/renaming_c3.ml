(* C3 is shared memory: the palette lower bound made concrete.

   On a 3-cycle every process reads every other process, so the state model
   *is* the 3-process shared-memory model with immediate snapshots — where
   renaming needs 2n-1 = 5 names.  This example shows the two sides of the
   coincidence:

   - Algorithm 2 on C3 emits every colour of {0..4} across executions
     (exhaustively explored), and the model checker proves no execution
     ever miscolours;
   - classic rank-based renaming among 3 shared-memory processes uses the
     same 5-name space.

   It also replays finding F1: the schedule under which literal Algorithm 2
   is *not* wait-free on C3 (simultaneous rounds sustain a phase-lock).

   Run with: dune exec examples/renaming_c3.exe *)

module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Explorer = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P)
module E2 = Asyncolor.Algorithm2.E

let () =
  let graph = Builders.cycle 3 in
  let idents = [| 5; 1; 9 |] in

  (* 1. Exhaust all interleaved schedules; collect colours ever emitted
     (over several identifier assignments — which colours appear depends on
     the identifier order around the ring). *)
  let seen = Hashtbl.create 8 in
  let collect outs =
    Array.iter (function Some c -> Hashtbl.replace seen c () | None -> ()) outs;
    None
  in
  let r = Explorer.explore ~mode:`Singletons graph ~idents ~check_outputs:collect in
  Printf.printf
    "exhaustive over interleaved schedules: %d configurations, wait-free=%b,\n\
     exact worst case = %d activations\n"
    r.configs r.wait_free r.worst_case_activations;
  List.iter
    (fun idents ->
      List.iter
        (fun mode ->
          ignore (Explorer.explore ~mode graph ~idents ~check_outputs:collect))
        [ `Singletons; `All_subsets ])
    [ [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 2; 0; 1 |]; [| 7; 3; 5 |] ];
  let colours = List.sort compare (Hashtbl.fold (fun c () l -> c :: l) seen []) in
  Printf.printf "colours emitted across all explored executions: {%s}\n"
    (String.concat "," (List.map string_of_int colours));
  assert (colours = [ 0; 1; 2; 3; 4 ]);

  (* 2. Renaming among 3 shared-memory processes: names fit in {0..4}. *)
  let ren =
    Asyncolor_shm.Renaming.run ~n:3 ~idents:[| 41; 7; 23 |] Adversary.sequential
  in
  Printf.printf "\nrank-based renaming (3 processes, sequential schedule): names = %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (function Some v -> string_of_int v | None -> "-") ren.outputs)));
  assert (ren.all_returned);

  (* 3. Finding F1: replay the lasso schedule found by the model checker. *)
  let lasso =
    [ [ 0 ]; [ 1 ]; [ 2 ] ] @ List.init 20 (fun _ -> [ 1; 2 ])
  in
  let engine = E2.create graph ~idents in
  let res = E2.run engine (Adversary.finite lasso) in
  Printf.printf
    "\nfinding F1 replay: after 3 wake-up steps and 20 simultaneous {1,2} rounds,\n\
     processes 1 and 2 are still working (activations: p1=%d, p2=%d) —\n\
     the literal algorithm phase-locks under sustained simultaneity.\n"
    res.activations_per_process.(1) res.activations_per_process.(2);
  assert (not res.all_returned)
