# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick examples experiments coverage clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full experiment tables + Bechamel timings (≈ 2-3 min)
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Dump every experiment table as CSV into ./results
csv:
	mkdir -p results
	dune exec bench/main.exe -- --no-bench --csv results

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crash_tolerance.exe
	dune exec examples/adversarial_chain.exe
	dune exec examples/renaming_c3.exe
	dune exec examples/general_graphs.exe
	dune exec examples/model_separation.exe

experiments:
	dune exec bin/asyncolor_cli.exe -- experiments

# Coverage-instrumented test run (requires bisect_ppx; the dune
# instrumentation stanzas are inert without it, so a plain build never
# needs it installed).  Produces _coverage/index.html and enforces the
# per-library floors in coverage-baseline.txt.
coverage:
	@ocamlfind query bisect_ppx >/dev/null 2>&1 || { \
	  echo "coverage: bisect_ppx is not installed (opam install bisect_ppx)"; \
	  echo "coverage: skipping — the build itself never needs it."; \
	  exit 0; } && \
	$(MAKE) coverage-run

.PHONY: coverage-run
coverage-run:
	find . -name '*.coverage' -delete
	dune runtest --instrument-with bisect_ppx --force
	bisect-ppx-report html --source-path . -o _coverage \
	  $$(find _build -name '*.coverage')
	bisect-ppx-report summary --per-file \
	  $$(find _build -name '*.coverage') > _coverage/summary.txt
	scripts/check_coverage.sh _coverage/summary.txt coverage-baseline.txt
	@echo "coverage: report in _coverage/index.html"

clean:
	dune clean
