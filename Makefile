# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick examples experiments clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full experiment tables + Bechamel timings (≈ 2-3 min)
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Dump every experiment table as CSV into ./results
csv:
	mkdir -p results
	dune exec bench/main.exe -- --no-bench --csv results

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crash_tolerance.exe
	dune exec examples/adversarial_chain.exe
	dune exec examples/renaming_c3.exe
	dune exec examples/general_graphs.exe
	dune exec examples/model_separation.exe

experiments:
	dune exec bin/asyncolor_cli.exe -- experiments

clean:
	dune clean
